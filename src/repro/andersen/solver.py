"""The Andersen constraint solver.

Constraint forms over the node universe (temps + object content nodes):

==========  =====================  ==========================
statement   constraint             handled as
==========  =====================  ==========================
p = &o      {o} <= pts(p)          initial points-to
p = q       pts(q) <= pts(p)       copy edge
p = phi(..) per-incoming copy      copy edges
p = *q      pts(o) <= pts(p),      complex (load) on q
            for o in pts(q)
*p = q      pts(q) <= pts(o),      complex (store) on p
            for o in pts(p)
p = gep q f {o.f | o in pts(q)}    complex (field) on q
call/fork   param/ret copies       on-the-fly call graph
==========  =====================  ==========================

Solved by wave propagation (Pereira & Berlin, the paper's [23]):
repeatedly (1) collapse SCCs of the copy graph into representative
nodes, (2) propagate points-to sets in topological order in one wave,
(3) evaluate complex constraints, which may add new copy edges and
points-to facts; stop when nothing changes.

Points-to sets hold :class:`MemObject` identities (not node indices),
so collapsing a cycle that runs through an object's *content node*
never destroys the object's identity as a points-to target. They are
interned bitmask :class:`~repro.pts.PTSet`s over a per-run
:class:`~repro.pts.PTUniverse`, which the whole downstream pipeline
(memory SSA, FSAM, clients) shares via :attr:`AndersenResult.universe`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cfg.callgraph import CallGraph
from repro.graphs.digraph import DiGraph
from repro.graphs.scc import tarjan_scc
from repro.ir.instructions import (
    AddrOf, Call, Copy, Fork, Gep, Instruction, Load, Phi, Ret, Store,
)
from repro.ir.module import Module
from repro.ir.types import ArrayType, StructType, ThreadType
from repro.ir.values import Constant, Function, MemObject, ObjectKind, Temp, Value
from repro.obs import NULL_OBS, Observer
from repro.pts import PTSet, PTUniverse

# Field chains longer than this collapse onto the base object: the
# positive-weight-cycle defence (a gep feeding itself would otherwise
# derive o.f, o.f.f, ... forever). Mirrors the PWC collapsing of
# Pearce et al. cited in the paper's Section 4.2.
MAX_FIELD_DEPTH = 8


class AndersenResult:
    """Read-only view of the solved constraint system."""

    def __init__(self, solver: "AndersenSolver") -> None:
        self._solver = solver
        self.callgraph = solver.callgraph
        self.module = solver.module
        self.universe = solver.universe
        self.thread_objects = dict(solver.thread_objects)

    def pts(self, value: Value) -> PTSet:
        """The points-to set of a temp, or the *content* points-to set
        of a memory object."""
        return self._solver.pts_of(value)

    def may_alias(self, p: Value, q: Value) -> bool:
        """Do the dereferences *p and *q possibly touch a common object?"""
        return bool(self.pts(p) & self.pts(q))

    def alias_set(self, p: Value, q: Value) -> PTSet:
        """AS(*p, *q): the common pointed-to objects (paper 3.3.2)."""
        return self.pts(p) & self.pts(q)

    def thread_object_of(self, fork: Fork) -> MemObject:
        """The abstract thread-id object a fork writes into *handle."""
        return self.thread_objects[fork.id]


class AndersenSolver:
    """Whole-module Andersen analysis with on-the-fly call graph."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.callgraph = CallGraph(module)
        self.universe = PTUniverse()
        # Keyed by the Value itself (identity hash). Keying by id()
        # would let synthetic temps (e.g. tid.src) be collected and a
        # later value reuse their address, silently merging nodes.
        self._index: Dict[Value, int] = {}
        self._rep: List[int] = []               # union-find parents
        self._pts: List[PTSet] = []
        self._succ: List[Set[int]] = []         # copy edges
        self._loads: List[List[int]] = []       # q -> dst nodes  (p = *q)
        self._stores: List[List[int]] = []      # p -> src nodes  (*p = q)
        self._geps: List[List[Tuple[Optional[int], int]]] = []
        self._call_watch: List[List[Instruction]] = []
        self.objects: List[MemObject] = []
        self._seen_objects: Set[int] = set()
        self.thread_objects: Dict[int, MemObject] = {}  # fork.id -> tid object
        self._linked_calls: Set[Tuple[int, int]] = set()
        self._ret_values: Dict[Function, List[Value]] = {}
        self._changed = True
        # Observability tallies, flushed into an Observer by
        # flush_obs(); plain ints to keep the solving loops cheap.
        self.waves = 0
        self.constraint_evals = 0
        self.pts_insertions = 0
        self.copy_edges_added = 0
        self.scc_collapsed_nodes = 0
        self.field_collapses = 0

    # -- node management --------------------------------------------------

    def _node(self, value: Value) -> int:
        node = self._index.get(value)
        if node is None:
            node = len(self._rep)
            self._index[value] = node
            self._rep.append(node)
            self._pts.append(self.universe.empty)
            self._succ.append(set())
            self._loads.append([])
            self._stores.append([])
            self._geps.append([])
            self._call_watch.append([])
            if isinstance(value, MemObject):
                self._register_object(value)
        return self._find(node)

    def _register_object(self, obj: MemObject) -> None:
        if id(obj) not in self._seen_objects:
            self._seen_objects.add(id(obj))
            self.objects.append(obj)
            self.universe.index(obj)

    def _find(self, node: int) -> int:
        root = node
        while self._rep[root] != root:
            root = self._rep[root]
        while self._rep[node] != root:
            self._rep[node], node = root, self._rep[node]
        return root

    def _union(self, a: int, b: int) -> int:
        if a == b:
            return a
        self._rep[b] = a
        self._pts[a] = self._pts[a] | self._pts[b]
        self._succ[a] |= self._succ[b]
        self._loads[a].extend(self._loads[b])
        self._stores[a].extend(self._stores[b])
        self._geps[a].extend(self._geps[b])
        self._call_watch[a].extend(self._call_watch[b])
        self._pts[b] = self.universe.empty
        self._succ[b] = set()
        self._loads[b] = []
        self._stores[b] = []
        self._geps[b] = []
        self._call_watch[b] = []
        return a

    def _add_pts(self, node: int, obj: MemObject) -> bool:
        node = self._find(node)
        self._register_object(obj)
        merged = self._pts[node] | self.universe.singleton(obj)
        if merged is not self._pts[node]:
            self._pts[node] = merged
            self._changed = True
            self.pts_insertions += 1
            return True
        return False

    def _add_copy(self, src: int, dst: int) -> bool:
        src, dst = self._find(src), self._find(dst)
        if src == dst or dst in self._succ[src]:
            return False
        self._succ[src].add(dst)
        self._changed = True
        self.copy_edges_added += 1
        return True

    # -- constraint generation --------------------------------------------

    def generate(self) -> None:
        """Collect constraints from every instruction in the module."""
        for obj in self.module.objects:
            self._register_object(obj)
        for fn in self.module.functions.values():
            self._ret_values[fn] = []
            for instr in fn.instructions():
                if isinstance(instr, Ret) and instr.value is not None:
                    self._ret_values[fn].append(instr.value)
        for fn in self.module.functions.values():
            for instr in fn.instructions():
                self._gen_instr(instr)

    def _value_node(self, value: Value) -> Optional[int]:
        """Node for a used value; None for constants (null points at
        nothing)."""
        if isinstance(value, Constant) or value is None:
            return None
        if isinstance(value, Function):
            # A function used as a value: a pseudo-node whose points-to
            # set is the function object (enables function pointers).
            node = self._node(value)
            self._add_pts(node, value.mem_object)
            return node
        return self._node(value)

    def _gen_instr(self, instr: Instruction) -> None:
        if isinstance(instr, AddrOf):
            self._add_pts(self._node(instr.dst), instr.obj)
        elif isinstance(instr, Copy):
            src = self._value_node(instr.src)
            if src is not None:
                self._add_copy(src, self._node(instr.dst))
        elif isinstance(instr, Phi):
            dst = self._node(instr.dst)
            for value, _ in instr.incomings:
                src = self._value_node(value)
                if src is not None:
                    self._add_copy(src, dst)
        elif isinstance(instr, Load):
            ptr = self._value_node(instr.ptr)
            if ptr is not None:
                self._loads[ptr].append(self._node(instr.dst))
                self._changed = True
        elif isinstance(instr, Store):
            ptr = self._value_node(instr.ptr)
            val = self._value_node(instr.value)
            if ptr is not None and val is not None:
                self._stores[ptr].append(val)
                self._changed = True
        elif isinstance(instr, Gep):
            base = self._value_node(instr.base)
            if base is not None:
                self._geps[base].append((instr.field_index, self._node(instr.dst)))
                self._changed = True
        elif isinstance(instr, Call):
            self._gen_call(instr)
        elif isinstance(instr, Fork):
            self._gen_fork(instr)
        # Join / Lock / Unlock / Branch / Jump / BinOp / Ret add no
        # points-to constraints (Ret values are linked per callsite).

    def _gen_call(self, call: Call) -> None:
        if isinstance(call.callee, Function):
            self._link_call(call, call.callee)
        else:
            node = self._value_node(call.callee)
            if node is not None:
                self._call_watch[node].append(call)
                self._changed = True

    def _gen_fork(self, fork: Fork) -> None:
        # The fork writes an abstract thread-id object into *handle_ptr,
        # which is what lets pthread_join correlate with its create
        # (the paper uses SCEV for loop symmetry; id flow is via memory).
        # Named by source line, not fork.id: instruction ids come from
        # a process-global counter, and the artifact cache serializes
        # object names, which must be identical across processes.
        tid = MemObject(f"tid.fork.l{fork.line}", ThreadType(),
                        ObjectKind.DUMMY)
        tid.fork_site = fork  # type: ignore[attr-defined]
        self.module.register_object(tid)
        self._register_object(tid)
        self.thread_objects[fork.id] = tid
        if fork.handle_ptr is not None:
            ptr = self._value_node(fork.handle_ptr)
            if ptr is not None:
                tid_src = Temp(f"tid.src{fork.id}", ThreadType())
                src_node = self._node(tid_src)
                self._add_pts(src_node, tid)
                self._stores[ptr].append(src_node)
                self._changed = True
        if isinstance(fork.routine, Function):
            self._link_call(fork, fork.routine)
        else:
            node = self._value_node(fork.routine)
            if node is not None:
                self._call_watch[node].append(fork)
                self._changed = True

    def _link_call(self, site, callee: Function) -> bool:
        """Wire parameter/return copies for one (site, callee) pair."""
        key = (site.id, id(callee))
        if key in self._linked_calls:
            return False
        self._linked_calls.add(key)
        self.callgraph.add_edge(site, callee)
        if callee.is_declaration or not callee.blocks:
            return True
        if isinstance(site, Fork):
            args: List[Value] = [site.arg] if site.arg is not None else []
        else:
            args = list(site.args)
        for param, arg in zip(callee.params, args):
            arg_node = self._value_node(arg)
            if arg_node is not None:
                self._add_copy(arg_node, self._node(param))
        if isinstance(site, Call) and site.dst is not None:
            dst = self._node(site.dst)
            for rv in self._ret_values.get(callee, []):
                rv_node = self._value_node(rv)
                if rv_node is not None:
                    self._add_copy(rv_node, dst)
        return True

    # -- solving ------------------------------------------------------------

    def solve(self) -> None:
        """Run wave propagation to a fixpoint."""
        while self._changed:
            self._changed = False
            self.waves += 1
            self._collapse_cycles()
            self._propagate_wave()
            self._evaluate_complex()

    def _live_nodes(self) -> List[int]:
        return [n for n in range(len(self._rep)) if self._rep[n] == n]

    def _collapse_cycles(self) -> None:
        graph = DiGraph()
        for node in self._live_nodes():
            graph.add_node(node)
            for succ in self._succ[node]:
                target = self._find(succ)
                if target != node:
                    graph.add_edge(node, target)
        for scc in tarjan_scc(graph):
            if len(scc) > 1:
                self.scc_collapsed_nodes += len(scc) - 1
                root = self._find(scc[0])
                for other in scc[1:]:
                    root = self._union(root, self._find(other))

    def _propagate_wave(self) -> None:
        graph = DiGraph()
        for node in self._live_nodes():
            graph.add_node(node)
            for succ in self._succ[node]:
                target = self._find(succ)
                if target != node:
                    graph.add_edge(node, target)
        # Tarjan emits SCCs in reverse topological order; after cycle
        # collapse each SCC is a singleton, so reversing yields a
        # sources-first order for one complete propagation wave.
        order = [scc[0] for scc in tarjan_scc(graph)]
        order.reverse()
        for node in order:
            pts = self._pts[node]
            if not pts:
                continue
            for succ in graph.successors(node):
                succ = self._find(succ)
                if succ == node:
                    continue
                merged = self._pts[succ] | pts
                if merged is not self._pts[succ]:
                    self._pts[succ] = merged
                    self._changed = True

    def _evaluate_complex(self) -> None:
        # PTSets are immutable, so iterating one while _add_pts rebinds
        # self._pts entries is safe without snapshotting.
        evals = 0
        for node in self._live_nodes():
            pts = self._pts[node]
            if not pts:
                continue
            evals += (len(self._loads[node]) + len(self._stores[node])
                      + len(self._geps[node]) + len(self._call_watch[node]))
            for dst in self._loads[node]:
                for obj in pts:
                    self._add_copy(self._node(obj), dst)
            for src in self._stores[node]:
                for obj in pts:
                    self._add_copy(src, self._node(obj))
            for field_index, dst in self._geps[node]:
                for obj in pts:
                    derived = self._derive_field(obj, field_index)
                    if derived is not None:
                        self._add_pts(dst, derived)
            for site in self._call_watch[node]:
                for obj in pts:
                    if obj.kind is ObjectKind.FUNCTION and obj.function is not None:
                        if self._link_call(site, obj.function):
                            self._changed = True
        self.constraint_evals += evals

    def _derive_field(self, obj: MemObject, field_index: Optional[int]) -> Optional[MemObject]:
        """The object denoted by ``gep obj, field_index``."""
        from repro.andersen.fields import derive_field
        field_obj = derive_field(obj, field_index)
        if field_obj is obj and field_index is not None:
            # Collapsed derivation: monolithic array, ill-typed gep, or
            # the MAX_FIELD_DEPTH positive-weight-cycle defence.
            self.field_collapses += 1
        self._register_object(field_obj)
        return field_obj

    # -- observability -------------------------------------------------------

    def flush_obs(self, obs: Observer) -> None:
        """Flush the solving tallies into *obs* (``andersen.*``)."""
        obs.count("andersen.waves", self.waves)
        obs.count("andersen.constraint_evals", self.constraint_evals)
        obs.count("andersen.pts_insertions", self.pts_insertions)
        obs.count("andersen.copy_edges_added", self.copy_edges_added)
        obs.count("andersen.scc_collapsed_nodes", self.scc_collapsed_nodes)
        obs.count("andersen.pwc_field_collapses", self.field_collapses)
        obs.gauge("andersen.nodes", len(self._rep))
        obs.gauge("andersen.objects", len(self.objects))

    # -- results ------------------------------------------------------------

    def pts_of(self, value: Value) -> PTSet:
        node = self._index.get(value)
        if node is None:
            return self.universe.empty
        return self._pts[self._find(node)]


def run_andersen(module: Module, obs: Observer = NULL_OBS) -> AndersenResult:
    """Run the pre-analysis over *module*; solving statistics land in
    *obs* under ``andersen.*``."""
    solver = AndersenSolver(module)
    solver.generate()
    solver.solve()
    solver.flush_obs(obs)
    return AndersenResult(solver)
