"""Andersen's inclusion-based pointer analysis (the pre-analysis).

FSAM bootstraps its sparse phase with a fast flow- and context-
insensitive whole-program points-to analysis (paper Figure 2). This
package implements Andersen's analysis with the wave-propagation
solving strategy of Pereira & Berlin (CGO'09, the paper's [23]):
online SCC collapsing of the copy graph, topological-order difference
propagation, and on-the-fly call-graph construction. Field-sensitive;
arrays are monolithic; positive-weight cycles from field derivations
are defused by capping derivation depth (Section 4.2's PWC
collapsing).
"""

from repro.andersen.solver import AndersenResult, AndersenSolver, run_andersen

__all__ = ["AndersenResult", "AndersenSolver", "run_andersen"]
