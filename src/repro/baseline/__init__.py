"""NONSPARSE: the baseline the paper compares against (Section 4.3).

A traditional iterative data-flow flow-sensitive pointer analysis in
the style of Rugina & Rinard, extended to unstructured Pthreads
programs with parallel regions discovered by a coarse PCG-style
procedure-level MHP. It maintains a points-to state for the
address-taken objects at every ICFG node and propagates whole states
along control flow — precisely the blind propagation FSAM's sparsity
avoids.
"""

from repro.baseline.pcg import ProcedureConcurrencyGraph
from repro.baseline.nonsparse import NonSparseAnalysis, NonSparseResult

__all__ = ["ProcedureConcurrencyGraph", "NonSparseAnalysis", "NonSparseResult"]
