"""NONSPARSE: traditional data-flow flow-sensitive pointer analysis.

Maintains the points-to state of every address-taken object at every
ICFG node and iterates transfer functions to a fixpoint, propagating
whole states from each node to its successors whether or not the
facts are needed there — the approach whose time and memory blow-up
motivates FSAM (paper Sections 1.1 and 4).

Thread interference is handled at PCG granularity: the effects of
every store are visible to every load in any procedure that may
execute concurrently (by the coarse procedure-level MHP), with no
flow-sensitive join or lock reasoning.

Top-level SSA temps keep a single global points-to set (they are
thread-local registers in partial SSA; both analyses treat them the
same way, so the comparison isolates the address-taken machinery).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.andersen import AndersenResult, run_andersen
from repro.andersen.fields import derive_field
from repro.baseline.pcg import ProcedureConcurrencyGraph
from repro.cfg.icfg import ICFG, ICFGNode, NodeKind
from repro.fsam.config import Deadline, FSAMConfig
from repro.ir.instructions import (
    AddrOf, Call, Copy, Fork, Gep, Join, Load, Phi, Ret, Store,
)
from repro.ir.module import Module
from repro.ir.values import Constant, Function, MemObject, Temp, Value

# A memory state: object id -> frozenset of pointed-to objects.
MemState = Dict[int, FrozenSet[MemObject]]


class NonSparseResult:
    """Query interface mirroring :class:`repro.fsam.FSAMResult`."""

    def __init__(self, analysis: "NonSparseAnalysis") -> None:
        self.analysis = analysis
        self.module = analysis.module

    def pts(self, value: Value) -> Set[MemObject]:
        return self.analysis.value_pts(value)

    def pts_names(self, value: Value) -> Set[str]:
        return {o.name for o in self.pts(value)}

    def deref_pts_at_line(self, line: int) -> Set[MemObject]:
        addr_defined: Set[int] = set()
        for instr in self.module.all_instructions():
            if isinstance(instr, AddrOf):
                addr_defined.add(instr.dst.id)
        result: Set[MemObject] = set()
        for instr in self.module.all_instructions():
            if isinstance(instr, Load) and instr.line == line:
                if isinstance(instr.ptr, Temp) and instr.ptr.id in addr_defined:
                    continue
                result |= self.pts(instr.dst)
        return result

    def deref_pts_names_at_line(self, line: int) -> Set[str]:
        return {o.name for o in self.deref_pts_at_line(line)}

    def points_to_entries(self) -> int:
        return self.analysis.points_to_entries()

    def total_time(self) -> float:
        return self.analysis.elapsed


class NonSparseAnalysis:
    """The baseline solver."""

    def __init__(self, module: Module, config: Optional[FSAMConfig] = None) -> None:
        self.module = module
        self.config = config or FSAMConfig()
        self.andersen: Optional[AndersenResult] = None
        self.icfg: Optional[ICFG] = None
        self.pcg: Optional[ProcedureConcurrencyGraph] = None
        self.pts_top: Dict[int, Set[MemObject]] = {}
        self.out_state: Dict[int, MemState] = {}      # node uid -> state
        self.iterations = 0
        self.elapsed = 0.0
        # Per thread class: accumulated store effects (obj id -> values)
        # visible to concurrently-running procedures.
        self._class_effects: Dict[int, Dict[int, Set[MemObject]]] = {}
        self._objects_by_id: Dict[int, MemObject] = {}

    # -- top-level helpers ------------------------------------------------

    def value_pts(self, value: Optional[Value]) -> Set[MemObject]:
        if value is None or isinstance(value, Constant):
            return set()
        if isinstance(value, Function):
            return {value.mem_object}
        if isinstance(value, Temp):
            return self.pts_top.get(value.id, set())
        return set()

    def _set_top(self, temp: Temp, values: Set[MemObject]) -> bool:
        current = self.pts_top.setdefault(temp.id, set())
        new = values - current
        if not new:
            return False
        current |= new
        return True

    # -- interference ---------------------------------------------------------

    def _record_store_effect(self, instr: Store) -> None:
        targets = self.value_pts(instr.ptr)
        values = self.value_pts(instr.value)
        if not targets or not values:
            return
        for cid in self.pcg.classes_of(instr.function):
            effects = self._class_effects.setdefault(cid, {})
            for obj in targets:
                effects.setdefault(obj.id, set()).update(values)

    def _interference_values(self, instr, obj: MemObject) -> Set[MemObject]:
        """Concurrent stores' contributions to reads of *obj* at a
        statement of this procedure."""
        result: Set[MemObject] = set()
        for cid in self.pcg.parallel_classes(instr.function):
            result |= self._class_effects.get(cid, {}).get(obj.id, set())
        return result

    # -- solving -----------------------------------------------------------------

    def run(self) -> NonSparseResult:
        deadline = Deadline(self.config.time_budget)
        self.andersen = run_andersen(self.module)
        self.icfg = ICFG(self.module, self.andersen.callgraph)
        self.pcg = ProcedureConcurrencyGraph(self.module, self.andersen)
        for obj in self.module.objects:
            self._objects_by_id[obj.id] = obj

        graph = self.icfg.graph
        # Fork nodes feed the start routine's entry (thread start sees
        # the spawner's state); joins are identity (interference covers
        # the rest).
        extra_edges: List[Tuple[ICFGNode, ICFGNode]] = []
        for fn in self.module.functions.values():
            for instr in fn.instructions():
                if isinstance(instr, Fork):
                    node = self.icfg.node_of(instr)
                    for routine in self.andersen.callgraph.callees(instr):
                        if routine in self.icfg.entries:
                            extra_edges.append((node, self.icfg.entry_of(routine)))
        for src, dst in extra_edges:
            graph.add_edge(src, dst)

        work: deque = deque()
        queued: Set[int] = set()

        def push(node: ICFGNode) -> None:
            if node.uid not in queued:
                queued.add(node.uid)
                work.append(node)

        for node in graph.nodes():
            push(node)

        while work:
            if self.iterations % 64 == 0:
                deadline.check()
            self.iterations += 1
            node = work.popleft()
            queued.discard(node.uid)
            in_state = self._merge_in(node)
            out_state, top_changed, effect_stores = self._transfer(node, in_state)
            old = self.out_state.get(node.uid)
            if old != out_state:
                self.out_state[node.uid] = out_state
                for succ in graph.successors(node):
                    push(succ)
            if top_changed or effect_stores:
                # Top-level growth re-enables dependent statements; the
                # traditional analysis simply reiterates — requeue the
                # whole graph region lazily by requeuing users.
                for succ in graph.successors(node):
                    push(succ)
                if effect_stores:
                    # New interference effects become visible to every
                    # node of every parallel procedure: requeue them.
                    self._requeue_parallel(node, push)
        self.elapsed = deadline.elapsed()
        return NonSparseResult(self)

    def _requeue_parallel(self, node: ICFGNode, push) -> None:
        parallel = self.pcg.parallel_classes(node.function)
        for cid in parallel:
            for fn in self.pcg.class_procs.get(cid, ()):
                for instr in fn.instructions():
                    if isinstance(instr, Load):
                        push(self.icfg.node_of(instr))

    def _merge_in(self, node: ICFGNode) -> MemState:
        state: MemState = {}
        for pred in self.icfg.graph.predecessors(node):
            pred_out = self.out_state.get(pred.uid)
            if not pred_out:
                continue
            for obj_id, values in pred_out.items():
                existing = state.get(obj_id)
                state[obj_id] = values if existing is None else (existing | values)
        return state

    def _transfer(self, node: ICFGNode, state: MemState):
        """Returns (out_state, top_changed, produced_new_effects)."""
        instr = node.instr
        top_changed = False
        new_effects = False
        if node.kind in (NodeKind.ENTRY, NodeKind.EXIT, NodeKind.RETSITE):
            return state, False, False
        if isinstance(instr, AddrOf):
            top_changed = self._set_top(instr.dst, {instr.obj})
        elif isinstance(instr, Copy):
            top_changed = self._set_top(instr.dst, self.value_pts(instr.src))
        elif isinstance(instr, Phi):
            merged: Set[MemObject] = set()
            for value, _b in instr.incomings:
                merged |= self.value_pts(value)
            top_changed = self._set_top(instr.dst, merged)
        elif isinstance(instr, Gep):
            derived = {derive_field(o, instr.field_index)
                       for o in self.value_pts(instr.base)}
            top_changed = self._set_top(instr.dst, derived)
        elif isinstance(instr, Load):
            values: Set[MemObject] = set()
            for obj in self.value_pts(instr.ptr):
                values |= state.get(obj.id, frozenset())
                values |= self._interference_values(instr, obj)
            top_changed = self._set_top(instr.dst, values)
        elif isinstance(instr, Store):
            targets = self.value_pts(instr.ptr)
            stored = frozenset(self.value_pts(instr.value))
            if targets:
                state = dict(state)
                strong = len(targets) == 1 and next(iter(targets)).is_singleton
                for obj in targets:
                    if strong:
                        state[obj.id] = stored
                    else:
                        state[obj.id] = state.get(obj.id, frozenset()) | stored
                before = self._effect_sizes(instr)
                self._record_store_effect(instr)
                new_effects = self._effect_sizes(instr) != before
            else:
                # kill(s, p) = A when the pointer resolves to nothing
                # (paper Figure 10): a store through null defines no
                # known location and propagates nothing. Mirror the
                # sparse analysis by killing the objects the
                # pre-analysis says the pointer could name.
                pre = self.andersen.pts(instr.ptr)
                if pre:
                    state = dict(state)
                    for obj in pre:
                        state[obj.id] = frozenset()
        elif isinstance(instr, Fork):
            # The abstract thread id lands in the handle slot.
            if instr.handle_ptr is not None:
                tid = self.andersen.thread_objects.get(instr.id)
                slots = self.value_pts(instr.handle_ptr)
                if tid is not None and slots:
                    state = dict(state)
                    for obj in slots:
                        state[obj.id] = state.get(obj.id, frozenset()) | {tid}
            for routine in self.andersen.callgraph.callees(instr):
                if routine.blocks and instr.arg is not None and routine.params:
                    top_changed |= self._set_top(routine.params[0],
                                                 self.value_pts(instr.arg))
        elif isinstance(instr, Call):
            for callee in self.andersen.callgraph.callees(instr):
                if callee.is_declaration or not callee.blocks:
                    continue
                for param, arg in zip(callee.params, instr.args):
                    top_changed |= self._set_top(param, self.value_pts(arg))
                if instr.dst is not None:
                    for rv in callee.instructions():
                        if isinstance(rv, Ret) and rv.value is not None:
                            top_changed |= self._set_top(instr.dst,
                                                         self.value_pts(rv.value))
        return state, top_changed, new_effects

    def _effect_sizes(self, instr: Store) -> int:
        total = 0
        for cid in self.pcg.classes_of(instr.function):
            effects = self._class_effects.get(cid, {})
            total += sum(len(v) for v in effects.values())
        return total

    # -- metrics -------------------------------------------------------------------

    def points_to_entries(self) -> int:
        total = sum(len(s) for s in self.pts_top.values())
        for state in self.out_state.values():
            total += sum(len(v) for v in state.values())
        return total
