"""NONSPARSE: traditional data-flow flow-sensitive pointer analysis.

Maintains the points-to state of every address-taken object at every
ICFG node and iterates transfer functions to a fixpoint, propagating
whole states from each node to its successors whether or not the
facts are needed there — the approach whose time and memory blow-up
motivates FSAM (paper Sections 1.1 and 4).

Thread interference is handled at PCG granularity: the effects of
every store are visible to every load in any procedure that may
execute concurrently (by the coarse procedure-level MHP), with no
flow-sensitive join or lock reasoning.

Top-level SSA temps keep a single global points-to set (they are
thread-local registers in partial SSA; both analyses treat them the
same way, so the comparison isolates the address-taken machinery).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.andersen import AndersenResult, run_andersen
from repro.andersen.fields import derive_field
from repro.baseline.pcg import ProcedureConcurrencyGraph
from repro.cfg.icfg import ICFG, ICFGNode, NodeKind
from repro.fsam.config import Deadline, FSAMConfig
from repro.ir.instructions import (
    AddrOf, Call, Copy, Fork, Gep, Join, Load, Phi, Ret, Store,
)
from repro.ir.module import Module
from repro.ir.values import Constant, Function, MemObject, Temp, Value
from repro.obs import NULL_OBS, Observer
from repro.pts import PTSet, PTUniverse

# A memory state: object id -> interned points-to set. Because PTSets
# are hash-consed, the per-ICFG-node states share set instances, which
# is what keeps this deliberately-wasteful baseline runnable at all.
MemState = Dict[int, PTSet]


class NonSparseResult:
    """Query interface mirroring :class:`repro.fsam.FSAMResult`."""

    def __init__(self, analysis: "NonSparseAnalysis") -> None:
        self.analysis = analysis
        self.module = analysis.module

    def pts(self, value: Value) -> PTSet:
        return self.analysis.value_pts(value)

    def pts_names(self, value: Value) -> Set[str]:
        return {o.name for o in self.pts(value)}

    def deref_pts_at_line(self, line: int) -> PTSet:
        addr_defined: Set[int] = set()
        for instr in self.module.all_instructions():
            if isinstance(instr, AddrOf):
                addr_defined.add(instr.dst.id)
        result = self.analysis.universe.empty
        for instr in self.module.all_instructions():
            if isinstance(instr, Load) and instr.line == line:
                if isinstance(instr.ptr, Temp) and instr.ptr.id in addr_defined:
                    continue
                result = result | self.pts(instr.dst)
        return result

    def deref_pts_names_at_line(self, line: int) -> Set[str]:
        return {o.name for o in self.deref_pts_at_line(line)}

    def points_to_entries(self) -> int:
        return self.analysis.points_to_entries()

    def total_time(self) -> float:
        return self.analysis.elapsed


class NonSparseAnalysis:
    """The baseline solver."""

    def __init__(self, module: Module, config: Optional[FSAMConfig] = None,
                 obs: Observer = NULL_OBS) -> None:
        self.module = module
        self.config = config or FSAMConfig()
        self.obs = obs
        self.andersen: Optional[AndersenResult] = None
        self.icfg: Optional[ICFG] = None
        self.pcg: Optional[ProcedureConcurrencyGraph] = None
        self.universe: Optional[PTUniverse] = None    # set from the pre-analysis
        self.pts_top: Dict[int, PTSet] = {}
        self.out_state: Dict[int, MemState] = {}      # node uid -> state
        self.iterations = 0
        self.strong_updates = 0
        self.weak_updates = 0
        self.parallel_requeues = 0
        self.elapsed = 0.0
        # Per thread class: accumulated store effects (obj id -> values)
        # visible to concurrently-running procedures.
        self._class_effects: Dict[int, Dict[int, PTSet]] = {}
        self._objects_by_id: Dict[int, MemObject] = {}
        # Lazily-built map: function -> object ids its loads/stores may
        # touch (pre-analysis view), for interference demotion of
        # strong updates when the config asks for it.
        self._proc_access: Optional[Dict[Function, Set[int]]] = None

    # -- top-level helpers ------------------------------------------------

    def value_pts(self, value: Optional[Value]) -> PTSet:
        if value is None or isinstance(value, Constant):
            return self.universe.empty
        if isinstance(value, Function):
            return self.universe.singleton(value.mem_object)
        if isinstance(value, Temp):
            return self.pts_top.get(value.id, self.universe.empty)
        return self.universe.empty

    def _set_top(self, temp: Temp, values: PTSet) -> bool:
        current = self.pts_top.get(temp.id, self.universe.empty)
        merged = current | values
        if merged is current:
            return False
        self.pts_top[temp.id] = merged
        return True

    # -- interference ---------------------------------------------------------

    def _record_store_effect(self, instr: Store) -> None:
        targets = self.value_pts(instr.ptr)
        values = self.value_pts(instr.value)
        if not targets or not values:
            return
        empty = self.universe.empty
        for cid in self.pcg.classes_of(instr.function):
            effects = self._class_effects.setdefault(cid, {})
            for obj in targets:
                effects[obj.id] = effects.get(obj.id, empty) | values

    def _interference_values(self, instr, obj: MemObject) -> PTSet:
        """Concurrent stores' contributions to reads of *obj* at a
        statement of this procedure."""
        empty = self.universe.empty
        result = empty
        for cid in self.pcg.parallel_classes(instr.function):
            result = result | self._class_effects.get(cid, {}).get(obj.id, empty)
        return result

    def _is_interfering(self, instr: Store, obj: MemObject) -> bool:
        """May a procedure running concurrently with this store touch
        *obj*? The baseline analogue of the DUG's interference marking:
        it gates strong updates when
        ``strong_updates_at_interfering_stores`` is off, keeping the
        FSAM-vs-NONSPARSE precision comparison aligned."""
        if self._proc_access is None:
            access: Dict[Function, Set[int]] = {}
            for fn in self.module.functions.values():
                ids: Set[int] = set()
                for i in fn.instructions():
                    if isinstance(i, (Load, Store)):
                        ids.update(o.id for o in self.andersen.pts(i.ptr))
                access[fn] = ids
            self._proc_access = access
        for cid in self.pcg.parallel_classes(instr.function):
            for fn in self.pcg.class_procs.get(cid, ()):
                if obj.id in self._proc_access.get(fn, ()):
                    return True
        return False

    # -- solving -----------------------------------------------------------------

    def run(self) -> NonSparseResult:
        deadline = Deadline(self.config.time_budget)
        obs = self.obs
        with obs.phase("pre_analysis"):
            self.andersen = run_andersen(self.module, obs=obs)
        self.universe = self.andersen.universe
        with obs.phase("icfg"):
            self.icfg = ICFG(self.module, self.andersen.callgraph)
        with obs.phase("pcg"):
            self.pcg = ProcedureConcurrencyGraph(self.module, self.andersen)
        for obj in self.module.objects:
            self._objects_by_id[obj.id] = obj

        graph = self.icfg.graph
        # Fork nodes feed the start routine's entry (thread start sees
        # the spawner's state); joins are identity (interference covers
        # the rest).
        extra_edges: List[Tuple[ICFGNode, ICFGNode]] = []
        for fn in self.module.functions.values():
            for instr in fn.instructions():
                if isinstance(instr, Fork):
                    node = self.icfg.node_of(instr)
                    for routine in self.andersen.callgraph.callees(instr):
                        if routine in self.icfg.entries:
                            extra_edges.append((node, self.icfg.entry_of(routine)))
        for src, dst in extra_edges:
            graph.add_edge(src, dst)

        work: deque = deque()
        queued: Set[int] = set()

        def push(node: ICFGNode) -> None:
            if node.uid not in queued:
                queued.add(node.uid)
                work.append(node)

        for node in graph.nodes():
            push(node)

        with obs.phase("nonsparse_solve"):
            while work:
                if self.iterations % 64 == 0:
                    deadline.check()
                self.iterations += 1
                node = work.popleft()
                queued.discard(node.uid)
                in_state = self._merge_in(node)
                out_state, top_changed, effect_stores = self._transfer(node, in_state)
                old = self.out_state.get(node.uid)
                if old != out_state:
                    self.out_state[node.uid] = out_state
                    for succ in graph.successors(node):
                        push(succ)
                if top_changed or effect_stores:
                    # Top-level growth re-enables dependent statements; the
                    # traditional analysis simply reiterates — requeue the
                    # whole graph region lazily by requeuing users.
                    for succ in graph.successors(node):
                        push(succ)
                    if effect_stores:
                        # New interference effects become visible to every
                        # node of every parallel procedure: requeue them.
                        self._requeue_parallel(node, push)
        self.elapsed = deadline.elapsed()
        self.flush_obs(obs)
        return NonSparseResult(self)

    def flush_obs(self, obs: Observer) -> None:
        obs.count("nonsparse.iterations", self.iterations)
        obs.count("nonsparse.strong_updates", self.strong_updates)
        obs.count("nonsparse.weak_updates", self.weak_updates)
        obs.count("nonsparse.parallel_requeues", self.parallel_requeues)
        obs.gauge("nonsparse.icfg_nodes", len(list(self.icfg.graph.nodes())))
        obs.gauge("nonsparse.points_to_entries", self.points_to_entries())
        ustats = self.universe.stats()
        obs.count("pts.set_references", int(ustats["set_references"]))
        obs.count("pts.union_cache_hits", int(ustats["union_cache_hits"]))
        obs.count("pts.intersect_cache_hits",
                  int(ustats["intersect_cache_hits"]))
        obs.gauge("pts.distinct_sets", int(ustats["distinct_sets"]))
        obs.gauge("pts.objects", int(ustats["objects"]))

    def _requeue_parallel(self, node: ICFGNode, push) -> None:
        parallel = self.pcg.parallel_classes(node.function)
        for cid in parallel:
            for fn in self.pcg.class_procs.get(cid, ()):
                for instr in fn.instructions():
                    if isinstance(instr, Load):
                        self.parallel_requeues += 1
                        push(self.icfg.node_of(instr))

    def _merge_in(self, node: ICFGNode) -> MemState:
        state: MemState = {}
        for pred in self.icfg.graph.predecessors(node):
            pred_out = self.out_state.get(pred.uid)
            if not pred_out:
                continue
            for obj_id, values in pred_out.items():
                existing = state.get(obj_id)
                # Interned union: shared masks make the all-paths merge
                # a dict-lookup + big-int OR instead of a set copy.
                state[obj_id] = values if existing is None else (existing | values)
        return state

    def _transfer(self, node: ICFGNode, state: MemState):
        """Returns (out_state, top_changed, produced_new_effects)."""
        instr = node.instr
        top_changed = False
        new_effects = False
        if node.kind in (NodeKind.ENTRY, NodeKind.EXIT, NodeKind.RETSITE):
            return state, False, False
        if isinstance(instr, AddrOf):
            top_changed = self._set_top(instr.dst, {instr.obj})
        elif isinstance(instr, Copy):
            top_changed = self._set_top(instr.dst, self.value_pts(instr.src))
        elif isinstance(instr, Phi):
            merged = self.universe.empty
            for value, _b in instr.incomings:
                merged = merged | self.value_pts(value)
            top_changed = self._set_top(instr.dst, merged)
        elif isinstance(instr, Gep):
            derived = self.universe.make(
                derive_field(o, instr.field_index)
                for o in self.value_pts(instr.base))
            top_changed = self._set_top(instr.dst, derived)
        elif isinstance(instr, Load):
            empty = self.universe.empty
            values = empty
            for obj in self.value_pts(instr.ptr):
                values = values | state.get(obj.id, empty)
                values = values | self._interference_values(instr, obj)
            top_changed = self._set_top(instr.dst, values)
        elif isinstance(instr, Store):
            empty = self.universe.empty
            targets = self.value_pts(instr.ptr)
            stored = self.value_pts(instr.value)
            if targets:
                state = dict(state)
                single = len(targets) == 1
                for obj in targets:
                    # Same strong-update gate as the sparse solver
                    # (fsam/solver.py:_eval_store): the pointer must
                    # resolve to exactly one object AND that object
                    # must be a singleton — checked per object, not on
                    # an arbitrary element of the target set — and the
                    # belt-and-braces config demotes stores whose
                    # target a concurrent procedure may touch.
                    strong = single and obj.is_singleton
                    if strong and not self.config.strong_updates_at_interfering_stores:
                        strong = not self._is_interfering(instr, obj)
                    if strong:
                        self.strong_updates += 1
                        state[obj.id] = stored
                    else:
                        self.weak_updates += 1
                        state[obj.id] = state.get(obj.id, empty) | stored
                before = self._effect_sizes(instr)
                self._record_store_effect(instr)
                new_effects = self._effect_sizes(instr) != before
            else:
                # kill(s, p) = A when the pointer resolves to nothing
                # (paper Figure 10): a store through null defines no
                # known location and propagates nothing. Mirror the
                # sparse analysis by killing the objects the
                # pre-analysis says the pointer could name.
                pre = self.andersen.pts(instr.ptr)
                if pre:
                    state = dict(state)
                    for obj in pre:
                        state[obj.id] = empty
        elif isinstance(instr, Fork):
            # The abstract thread id lands in the handle slot.
            if instr.handle_ptr is not None:
                tid = self.andersen.thread_objects.get(instr.id)
                slots = self.value_pts(instr.handle_ptr)
                if tid is not None and slots:
                    state = dict(state)
                    tid_set = self.universe.singleton(tid)
                    for obj in slots:
                        state[obj.id] = state.get(obj.id, self.universe.empty) | tid_set
            for routine in self.andersen.callgraph.callees(instr):
                if routine.blocks and instr.arg is not None and routine.params:
                    top_changed |= self._set_top(routine.params[0],
                                                 self.value_pts(instr.arg))
        elif isinstance(instr, Call):
            for callee in self.andersen.callgraph.callees(instr):
                if callee.is_declaration or not callee.blocks:
                    continue
                for param, arg in zip(callee.params, instr.args):
                    top_changed |= self._set_top(param, self.value_pts(arg))
                if instr.dst is not None:
                    for rv in callee.instructions():
                        if isinstance(rv, Ret) and rv.value is not None:
                            top_changed |= self._set_top(instr.dst,
                                                         self.value_pts(rv.value))
        return state, top_changed, new_effects

    def _effect_sizes(self, instr: Store) -> int:
        total = 0
        for cid in self.pcg.classes_of(instr.function):
            effects = self._class_effects.get(cid, {})
            total += sum(len(v) for v in effects.values())
        return total

    # -- metrics -------------------------------------------------------------------

    def points_to_entries(self) -> int:
        total = sum(len(s) for s in self.pts_top.values())
        for state in self.out_state.values():
            total += sum(len(v) for v in state.values())
        return total
