"""A coarse procedure-level concurrency analysis (PCG-style).

Joisha et al.'s PCG distinguishes whether two *procedures* may
execute concurrently. This implementation captures that granularity:
it assigns each fork site (context-insensitively) a thread class,
computes the procedures each class may execute, and deems two
procedures concurrent when distinct classes (or one multi-forked
class) may run them. No flow-sensitive join reasoning, no
happens-before — the coarseness the paper's No-Interleaving ablation
and the NONSPARSE baseline both rely on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.andersen import AndersenResult
from repro.cfg.callgraph import CallGraph
from repro.cfg.cfg import CFG
from repro.ir.instructions import Call, Fork, Instruction
from repro.ir.module import Module
from repro.ir.values import Function


class ProcedureConcurrencyGraph:
    """Thread classes and their procedure footprints."""

    MAIN_CLASS = 0

    def __init__(self, module: Module, andersen: AndersenResult) -> None:
        self.module = module
        self.andersen = andersen
        self.callgraph: CallGraph = andersen.callgraph
        # class id -> procedures it may execute.
        self.class_procs: Dict[int, Set[Function]] = {}
        # class id -> is the class multi-forked (fork in loop/recursion).
        self.multi: Dict[int, bool] = {}
        # function name -> class ids that may run it.
        self._classes_of_fn: Dict[str, Set[int]] = {}
        self._build()

    def _call_reachable(self, root: Function) -> Set[Function]:
        """Functions reachable from *root* through calls AND forks —
        the footprint of a thread class plus everything it spawns."""
        seen: Set[Function] = set()
        work = [root]
        while work:
            fn = work.pop()
            if fn in seen or fn.is_declaration or not fn.blocks:
                continue
            seen.add(fn)
            for instr in fn.instructions():
                if isinstance(instr, (Call, Fork)):
                    work.extend(self.callgraph.callees(instr))
        return seen

    def _build(self) -> None:
        main = self.module.main
        self.class_procs[self.MAIN_CLASS] = self._call_reachable(main)
        self.multi[self.MAIN_CLASS] = False
        next_class = 1
        loop_cache: Dict[str, Set] = {}
        for fn in self.module.functions.values():
            if fn.is_declaration or not fn.blocks:
                continue
            for instr in fn.instructions():
                if not isinstance(instr, Fork):
                    continue
                in_loop = False
                if fn.name not in loop_cache:
                    loop_cache[fn.name] = CFG(fn).loop_blocks
                if instr.block in loop_cache[fn.name] or self.callgraph.in_cycle(fn):
                    in_loop = True
                for routine in self.callgraph.callees(instr):
                    cid = next_class
                    next_class += 1
                    self.class_procs[cid] = self._call_reachable(routine)
                    self.multi[cid] = in_loop
        for cid, procs in self.class_procs.items():
            for fn in procs:
                self._classes_of_fn.setdefault(fn.name, set()).add(cid)

    # -- queries ------------------------------------------------------------

    def classes_of(self, fn: Optional[Function]) -> Set[int]:
        if fn is None:
            return set()
        return self._classes_of_fn.get(fn.name, set())

    def procedures_concurrent(self, f1: Function, f2: Function) -> bool:
        """May *f1* and *f2* execute concurrently (procedure-level)?"""
        c1 = self.classes_of(f1)
        c2 = self.classes_of(f2)
        for a in c1:
            for b in c2:
                if a != b:
                    return True
                if self.multi.get(a, False):
                    return True
        return False

    def statements_concurrent(self, s1: Instruction, s2: Instruction) -> bool:
        if s1.function is None or s2.function is None:
            return False
        return self.procedures_concurrent(s1.function, s2.function)

    def parallel_classes(self, fn: Function) -> Set[int]:
        """Classes that may run concurrently with code of *fn*."""
        own = self.classes_of(fn)
        result: Set[int] = set()
        for cid in self.class_procs:
            if cid not in own:
                result.add(cid)
            elif self.multi.get(cid, False):
                result.add(cid)
        # Any two distinct classes overlap in time under this coarse
        # model; classes sharing fn still conflict when multi-forked.
        if len(own) > 1:
            result |= own
        return result
