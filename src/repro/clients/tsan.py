"""Static instrumentation reduction for dynamic race detectors.

The paper's future work (§6) proposes combining FSAM with tools like
Google's ThreadSanitizer "to reduce their instrumentation overhead":
an access that FSAM proves race-free never needs a runtime check.

This client classifies every load and store:

- ``RACY``        — participates in at least one MHP, aliased,
                    not-commonly-locked access pair: must instrument.
- ``LOCKED``      — conflicts exist, but every parallel instance pair
                    is protected by a common lock: a dynamic detector
                    with lock-set reasoning can skip or downgrade it.
- ``LOCAL``       — no conflicting parallel access at all: skip.

The summary reports the fraction of instrumentation sites avoided.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.fsam.analysis import FSAM, FSAMResult
from repro.fsam.config import FSAMConfig
from repro.ir.instructions import Instruction, Load, Store
from repro.ir.module import Module
from repro.ir.values import Constant, MemObject, Temp
from repro.mt.locks import LockAnalysis


class AccessClass(enum.Enum):
    RACY = "racy"
    LOCKED = "locked"
    LOCAL = "local"


@dataclass
class InstrumentationReport:
    """Per-access classes plus the headline reduction numbers."""

    classes: Dict[int, AccessClass] = field(default_factory=dict)
    accesses: Dict[int, Instruction] = field(default_factory=dict)

    def count(self, cls: AccessClass) -> int:
        return sum(1 for c in self.classes.values() if c is cls)

    @property
    def total(self) -> int:
        return len(self.classes)

    @property
    def reduction(self) -> float:
        """Fraction of accesses that need no full instrumentation."""
        if not self.classes:
            return 0.0
        return 1.0 - self.count(AccessClass.RACY) / self.total

    def class_of(self, instr: Instruction) -> Optional[AccessClass]:
        return self.classes.get(instr.id)

    def summary(self) -> str:
        return (f"{self.total} accesses: {self.count(AccessClass.RACY)} racy, "
                f"{self.count(AccessClass.LOCKED)} lock-protected, "
                f"{self.count(AccessClass.LOCAL)} thread-local "
                f"-> {self.reduction * 100.0:.1f}% instrumentation avoided")


class InstrumentationReducer:
    """Classifies accesses using FSAM's MHP + aliasing + lock spans."""

    def __init__(self, module: Module, config: Optional[FSAMConfig] = None) -> None:
        self.module = module
        self.config = config or FSAMConfig()
        self.result: Optional[FSAMResult] = None

    def _objects_of(self, andersen, instr: Instruction) -> Set[MemObject]:
        ptr = instr.ptr
        if isinstance(ptr, Constant) or ptr is None:
            return set()
        return andersen.pts(ptr)

    def run(self) -> InstrumentationReport:
        result = FSAM(self.module, self.config).run()
        self.result = result
        andersen = result.andersen
        locks = LockAnalysis(result.thread_model, andersen,
                             result.dug, result.builder)
        mhp = result.mhp

        accesses: List[Instruction] = []
        objs_of: Dict[int, Set[MemObject]] = {}
        by_object: Dict[int, List[Instruction]] = {}
        writers: Dict[int, List[Instruction]] = {}
        for instr in self.module.all_instructions():
            if isinstance(instr, (Load, Store)):
                objs = self._objects_of(andersen, instr)
                if not objs:
                    continue
                accesses.append(instr)
                objs_of[instr.id] = objs
                for obj in objs:
                    by_object.setdefault(obj.id, []).append(instr)
                    if isinstance(instr, Store):
                        writers.setdefault(obj.id, []).append(instr)

        report = InstrumentationReport()
        for access in accesses:
            report.accesses[access.id] = access
            cls = AccessClass.LOCAL
            for obj in objs_of[access.id]:
                conflicting = (by_object.get(obj.id, [])
                               if isinstance(access, Store)
                               else writers.get(obj.id, []))
                for other in conflicting:
                    if other is access:
                        continue
                    verdict = self._pair_class(access, other, mhp, locks)
                    if verdict is AccessClass.RACY:
                        cls = AccessClass.RACY
                        break
                    if verdict is AccessClass.LOCKED and cls is AccessClass.LOCAL:
                        cls = AccessClass.LOCKED
                if cls is AccessClass.RACY:
                    break
            report.classes[access.id] = cls
        return report

    def _pair_class(self, a: Instruction, b: Instruction, mhp,
                    locks: LockAnalysis) -> AccessClass:
        saw_pair = False
        for inst1, inst2 in mhp.parallel_instance_pairs(a, b):
            saw_pair = True
            if not locks.commonly_protected(inst1, inst2):
                return AccessClass.RACY
        return AccessClass.LOCKED if saw_pair else AccessClass.LOCAL


def reduce_instrumentation(module: Module,
                           config: Optional[FSAMConfig] = None) -> InstrumentationReport:
    """Convenience wrapper."""
    return InstrumentationReducer(module, config).run()
