"""A static data race detector on top of FSAM.

A race candidate is a pair of accesses (at least one a store) to a
common abstract object such that (1) the pair may happen in parallel
(FSAM's interleaving analysis), (2) FSAM's flow-sensitive points-to
sets confirm the aliasing, and (3) no common lock protects every
parallel instance of the pair (FSAM's lock-release spans).

Precision of the underlying pointer analysis translates directly into
fewer false positives here — the paper's motivating claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.fsam.analysis import FSAM, FSAMResult
from repro.fsam.config import FSAMConfig
from repro.ir.instructions import Instruction, Load, Store
from repro.ir.module import Module
from repro.ir.values import MemObject
from repro.mt.locks import LockAnalysis


@dataclass
class DataRace:
    """A reported race: two accesses on one abstract object."""

    store: Store
    access: Instruction  # a Load or another Store
    obj: MemObject

    @property
    def is_write_write(self) -> bool:
        return isinstance(self.access, Store)

    def describe(self) -> str:
        kind = "write-write" if self.is_write_write else "write-read"
        loc1 = f"line {self.store.line}" if self.store.line else f"#{self.store.id}"
        loc2 = f"line {self.access.line}" if self.access.line else f"#{self.access.id}"
        return f"{kind} race on '{self.obj.name}': {loc1} vs {loc2}"


class RaceDetector:
    """Runs FSAM, then filters access pairs."""

    def __init__(self, module: Module, config: Optional[FSAMConfig] = None) -> None:
        self.module = module
        self.config = config or FSAMConfig()
        self.result: Optional[FSAMResult] = None

    def run(self) -> List[DataRace]:
        result = FSAM(self.module, self.config).run()
        self.result = result
        mhp = result.mhp
        builder = result.builder
        model = result.thread_model
        locks = LockAnalysis(model, result.andersen, result.dug, builder)

        # Sparse (flow-sensitive) aliasing: which objects can each
        # access actually touch, per FSAM rather than the pre-analysis.
        def sparse_objs(instr: Instruction) -> Set[MemObject]:
            if isinstance(instr, Store):
                pre = builder.chis.get(instr.id, set())
            else:
                pre = builder.mus.get(instr.id, set())
            return result.pts(instr.ptr) & pre

        stores_on: Dict[int, List[Store]] = {}
        accesses_on: Dict[int, List[Instruction]] = {}
        objects: Dict[int, MemObject] = {}
        for instr in self.module.all_instructions():
            if isinstance(instr, (Store, Load)):
                for obj in sparse_objs(instr):
                    objects[obj.id] = obj
                    accesses_on.setdefault(obj.id, []).append(instr)
                    if isinstance(instr, Store):
                        stores_on.setdefault(obj.id, []).append(instr)

        races: List[DataRace] = []
        reported: Set[Tuple[int, int, int]] = set()
        for obj_id, stores in stores_on.items():
            obj = objects[obj_id]
            for store in stores:
                for access in accesses_on.get(obj_id, []):
                    if access is store:
                        continue
                    if isinstance(access, Store) and access.id < store.id:
                        continue  # report each write-write pair once
                    key = (min(store.id, access.id), max(store.id, access.id), obj_id)
                    if key in reported:
                        continue
                    if self._races(store, access, obj, mhp, locks):
                        reported.add(key)
                        races.append(DataRace(store, access, obj))
        races.sort(key=lambda r: (r.store.line or 0, r.access.line or 0))
        return races

    def _races(self, store: Store, access: Instruction, obj: MemObject,
               mhp, locks: LockAnalysis) -> bool:
        found_unprotected = False
        for inst1, inst2 in mhp.parallel_instance_pairs(store, access):
            if not locks.commonly_protected(inst1, inst2):
                found_unprotected = True
                break
        return found_unprotected


def detect_races(module: Module, config: Optional[FSAMConfig] = None) -> List[DataRace]:
    """Convenience wrapper."""
    return RaceDetector(module, config).run()
