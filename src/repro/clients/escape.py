"""Thread-escape classification (the "compiler optimization reuse"
client family of the paper's introduction).

Classifies every abstract object by which abstract threads may touch
it:

- ``THREAD_LOCAL`` — accessed by exactly one non-multi-forked thread:
  a compiler may reuse sequential optimisations (scalarisation,
  redundant-load elimination) on its accesses unchanged.
- ``SHARED``       — reachable from two threads (or one multi-forked
  thread): sequential optimisations need interference checks.

Accuracy comes straight from FSAM's thread model: the per-thread
state graphs say which code each abstract thread executes, and the
pre-analysis says which objects that code touches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.andersen import AndersenResult, run_andersen
from repro.ir.instructions import Instruction, Load, Store
from repro.ir.module import Module
from repro.ir.values import Constant, MemObject, ObjectKind
from repro.mt.threads import ThreadModel


class EscapeClass(enum.Enum):
    THREAD_LOCAL = "thread-local"
    SHARED = "shared"
    UNUSED = "unused"


@dataclass
class EscapeReport:
    classes: Dict[int, EscapeClass] = field(default_factory=dict)
    objects: Dict[int, MemObject] = field(default_factory=dict)
    accessing_threads: Dict[int, Set[int]] = field(default_factory=dict)

    def class_of(self, obj: MemObject) -> EscapeClass:
        return self.classes.get(obj.id, EscapeClass.UNUSED)

    def count(self, cls: EscapeClass) -> int:
        return sum(1 for c in self.classes.values() if c is cls)

    def summary(self) -> str:
        return (f"{len(self.classes)} objects: "
                f"{self.count(EscapeClass.THREAD_LOCAL)} thread-local, "
                f"{self.count(EscapeClass.SHARED)} shared, "
                f"{self.count(EscapeClass.UNUSED)} unused")


class EscapeAnalysis:
    """Object -> accessing-thread classification."""

    def __init__(self, module: Module,
                 andersen: Optional[AndersenResult] = None,
                 model: Optional[ThreadModel] = None) -> None:
        self.module = module
        self.andersen = andersen if andersen is not None else run_andersen(module)
        self.model = model if model is not None else ThreadModel(module, self.andersen)

    def run(self) -> EscapeReport:
        report = EscapeReport()
        # Which threads execute each instruction (via state graphs).
        threads_of_instr: Dict[int, Set[int]] = {}
        multi: Set[int] = set()
        for thread in self.model.threads:
            if thread.multi_forked:
                multi.add(thread.id)
            graph = self.model.state_graphs[thread.id]
            for instr_id in graph.instr_states:
                threads_of_instr.setdefault(instr_id, set()).add(thread.id)

        for instr in self.module.all_instructions():
            if not isinstance(instr, (Load, Store)):
                continue
            ptr = instr.ptr
            if ptr is None or isinstance(ptr, Constant):
                continue
            for obj in self.andersen.pts(ptr):
                report.objects[obj.id] = obj
                report.accessing_threads.setdefault(obj.id, set()).update(
                    threads_of_instr.get(instr.id, set()))

        for obj_id, obj in report.objects.items():
            threads = report.accessing_threads.get(obj_id, set())
            if not threads:
                report.classes[obj_id] = EscapeClass.UNUSED
            elif len(threads) > 1 or (threads & multi):
                report.classes[obj_id] = EscapeClass.SHARED
            else:
                report.classes[obj_id] = EscapeClass.THREAD_LOCAL
        return report


def classify_escapes(module: Module) -> EscapeReport:
    """Convenience wrapper."""
    return EscapeAnalysis(module).run()
