"""Client analyses built on FSAM.

The paper motivates FSAM by the clients it enables (Section 1) and
sketches more in its future work (Section 6). This package ships
four of them, each consuming FSAM's points-to, MHP, and lock-span
information:

- :mod:`repro.clients.races`     — static data race detection.
- :mod:`repro.clients.deadlocks` — lock-order-cycle (ABBA) detection.
- :mod:`repro.clients.tsan`      — ThreadSanitizer-style
  instrumentation reduction (classify accesses racy / locked / local).
- :mod:`repro.clients.escape`    — thread-escape classification for
  sequential-optimisation reuse.
"""

from repro.clients.races import DataRace, RaceDetector, detect_races
from repro.clients.deadlocks import DeadlockCandidate, DeadlockDetector, detect_deadlocks
from repro.clients.tsan import (
    AccessClass, InstrumentationReducer, InstrumentationReport,
    reduce_instrumentation,
)
from repro.clients.escape import (
    EscapeAnalysis, EscapeClass, EscapeReport, classify_escapes,
)

__all__ = [
    "DataRace", "RaceDetector", "detect_races",
    "DeadlockCandidate", "DeadlockDetector", "detect_deadlocks",
    "AccessClass", "InstrumentationReducer", "InstrumentationReport",
    "reduce_instrumentation",
    "EscapeAnalysis", "EscapeClass", "EscapeReport", "classify_escapes",
]
