"""Static deadlock detection on top of FSAM (paper future work §6).

Builds the lock-order graph from FSAM's lock-release spans: holding
l1 while acquiring l2 adds the edge l1 -> l2, witnessed by the inner
acquisition site. A cycle whose witness acquisitions may happen in
parallel (per the interleaving analysis) is a potential ABBA
deadlock. Precision of the span and MHP machinery translates
directly into fewer false alarms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.fsam.analysis import FSAM, FSAMResult
from repro.fsam.config import FSAMConfig
from repro.graphs.digraph import DiGraph
from repro.graphs.scc import tarjan_scc
from repro.ir.instructions import Lock
from repro.ir.module import Module
from repro.ir.values import MemObject
from repro.mt.locks import LockAnalysis


@dataclass
class DeadlockCandidate:
    """A potential ABBA deadlock: two locks acquired in both orders by
    potentially-parallel code."""

    first: MemObject
    second: MemObject
    site_holding_first: Lock      # acquires `second` while holding `first`
    site_holding_second: Lock     # acquires `first` while holding `second`

    def describe(self) -> str:
        l1 = f"line {self.site_holding_first.line}" if self.site_holding_first.line else "?"
        l2 = f"line {self.site_holding_second.line}" if self.site_holding_second.line else "?"
        return (f"lock-order cycle {self.first.name} -> {self.second.name} "
                f"(at {l1}) vs {self.second.name} -> {self.first.name} (at {l2})")


class DeadlockDetector:
    """Runs FSAM, builds the lock-order graph, reports cycles."""

    def __init__(self, module: Module, config: Optional[FSAMConfig] = None) -> None:
        self.module = module
        self.config = config or FSAMConfig()
        self.result: Optional[FSAMResult] = None
        # (l1.id, l2.id) -> witness Lock instructions acquiring l2
        # while l1 is held.
        self.order_edges: Dict[Tuple[int, int], List[Lock]] = {}
        self.lock_objects: Dict[int, MemObject] = {}

    def run(self) -> List[DeadlockCandidate]:
        result = FSAM(self.module, self.config).run()
        self.result = result
        locks = LockAnalysis(result.thread_model, result.andersen,
                             result.dug, result.builder)
        model = result.thread_model

        # Holding l1 (span of l1), acquiring l2: edge l1 -> l2.
        for span in locks.spans:
            l1 = span.lock_obj
            self.lock_objects[l1.id] = l1
            graph = model.state_graphs[span.thread.id]
            for sid in span.members:
                if sid == span.lock_sid:
                    continue
                _ctx, node = graph.state(sid)
                if not isinstance(node.instr, Lock):
                    continue
                l2 = locks._lock_object(node.instr.ptr)
                if l2 is None or l2 is l1:
                    continue
                self.lock_objects[l2.id] = l2
                self.order_edges.setdefault((l1.id, l2.id), [])
                if node.instr not in self.order_edges[(l1.id, l2.id)]:
                    self.order_edges[(l1.id, l2.id)].append(node.instr)

        return self._find_cycles(result)

    def _find_cycles(self, result: FSAMResult) -> List[DeadlockCandidate]:
        graph = DiGraph()
        for (a, b) in self.order_edges:
            graph.add_edge(a, b)
        candidates: List[DeadlockCandidate] = []
        reported: Set[Tuple[int, int]] = set()
        for scc in tarjan_scc(graph):
            if len(scc) < 2 and not graph.has_edge(scc[0], scc[0]):
                continue
            members = set(scc)
            for (a, b), sites_ab in self.order_edges.items():
                if a not in members or b not in members or a >= b:
                    continue
                sites_ba = self.order_edges.get((b, a))
                if not sites_ba or (a, b) in reported:
                    continue
                for s_ab in sites_ab:
                    for s_ba in sites_ba:
                        # Both inner acquisitions must be able to
                        # overlap in time for the ABBA interleaving.
                        if result.mhp.may_happen_in_parallel(s_ab, s_ba):
                            reported.add((a, b))
                            candidates.append(DeadlockCandidate(
                                first=self.lock_objects[a],
                                second=self.lock_objects[b],
                                site_holding_first=s_ab,
                                site_holding_second=s_ba))
                            break
                    if (a, b) in reported:
                        break
        candidates.sort(key=lambda c: (c.first.name, c.second.name))
        return candidates


def detect_deadlocks(module: Module, config: Optional[FSAMConfig] = None) -> List[DeadlockCandidate]:
    """Convenience wrapper."""
    return DeadlockDetector(module, config).run()
