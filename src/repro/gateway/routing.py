"""Consistent-hash request routing.

The gateway pins requests to shard workers by **program source
digest**, so repeated traffic for a hot program always lands on the
same worker — whose in-process pipeline LRU, per-program query
engine, and artifact memo are already warm.  A plain ``digest %
shards`` mapping would reshuffle *every* key when a worker dies; the
consistent-hash ring remaps only the dead worker's arc onto its ring
successors, so the other workers keep their warm state through a
respawn.

Hashing is SHA-256-based throughout — deterministic across processes
and ``PYTHONHASHSEED`` values, like every other digest in the service
layer (see :mod:`repro.service.digest`).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional


def _point(label: str) -> int:
    """A stable 64-bit ring coordinate for *label*."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over integer shard ids.

    Each shard owns ``replicas`` virtual points; a key routes to the
    owner of the first point clockwise from the key's own coordinate.
    ``remove`` (worker died) keeps every other shard's points in
    place, so only the dead shard's keys move; ``add`` (respawn
    finished) restores them.
    """

    def __init__(self, shards: Iterable[int] = (),
                 replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: List[int] = []        # sorted ring coordinates
        self._owner: Dict[int, int] = {}    # coordinate -> shard id
        for shard in shards:
            self.add(shard)

    def __contains__(self, shard: int) -> bool:
        return any(owner == shard for owner in self._owner.values())

    def __len__(self) -> int:
        return len({owner for owner in self._owner.values()})

    @property
    def shards(self) -> List[int]:
        return sorted({owner for owner in self._owner.values()})

    def add(self, shard: int) -> None:
        if shard in self:
            return
        for replica in range(self.replicas):
            coord = _point(f"shard-{shard}-replica-{replica}")
            # A full-width collision between two sha256 prefixes is
            # astronomically unlikely; skip rather than corrupt the map.
            if coord in self._owner:  # pragma: no cover
                continue
            self._owner[coord] = shard
            bisect.insort(self._points, coord)

    def remove(self, shard: int) -> None:
        dead = [coord for coord, owner in self._owner.items()
                if owner == shard]
        for coord in dead:
            del self._owner[coord]
            index = bisect.bisect_left(self._points, coord)
            del self._points[index]

    def route(self, key: str) -> Optional[int]:
        """The shard owning *key* (any string; typically a request
        digest), or None when the ring is empty."""
        if not self._points:
            return None
        coord = _point(key)
        index = bisect.bisect_right(self._points, coord)
        if index == len(self._points):
            index = 0
        return self._owner[self._points[index]]

    def spread(self, keys: Iterable[str]) -> Dict[int, int]:
        """Shard id -> number of *keys* routed to it (diagnostics)."""
        counts: Dict[int, int] = {shard: 0 for shard in self.shards}
        for key in keys:
            shard = self.route(key)
            if shard is not None:
                counts[shard] += 1
        return counts
