"""Per-tenant admission control: token buckets + bounded priority
queues.

Every gateway request names a ``tenant`` (defaulting to
``"default"``).  Each tenant has a :class:`TenantPolicy` — a
token-bucket rate limit and a scheduling priority — loaded from the
``--tenants-config`` JSON document::

    {
      "default": {"rate": null, "burst": 64, "priority": 1},
      "ide":     {"rate": 200,  "burst": 400, "priority": 5},
      "batch":   {"rate": 20,   "burst": 40,  "priority": 0}
    }

Two independent gates, both shedding with structured 429-style error
records instead of silently dropping work:

- **rate**: a classic token bucket per tenant (``rate`` tokens/second
  refill, ``burst`` capacity; ``rate: null`` = unlimited).  An empty
  bucket raises :class:`~repro.gateway.protocol.RateLimited`.
- **queue depth**: each shard keeps a priority-ordered pending queue;
  when the *total* queued work exceeds the configured high-water mark
  the lowest-priority queued request is shed with
  :class:`~repro.gateway.protocol.QueueFull` — unless the incoming
  request itself is the lowest, in which case it is refused directly.
  Backpressure is visible as ``gateway.queue_depth`` gauges and
  ``gateway.shed`` counters in the ``repro.metrics/1`` feed.

Clocks are injectable (``clock=``) so tests drive refill
deterministically.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.gateway.protocol import BadRequest, RateLimited

#: Tenant used when a request names none.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's admission parameters."""

    name: str
    rate: Optional[float] = None    # tokens/second; None = unlimited
    burst: int = 64                 # bucket capacity
    priority: int = 1               # higher = scheduled first, shed last

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate < 0:
            raise ValueError(f"tenant {self.name!r}: rate must be >= 0")
        if self.burst < 1:
            raise ValueError(f"tenant {self.name!r}: burst must be >= 1")


def policies_from_config(doc: object) -> Dict[str, TenantPolicy]:
    """Parse a ``--tenants-config`` document (tenant name ->
    {rate, burst, priority})."""
    if not isinstance(doc, dict):
        raise ValueError("tenants config is not a JSON object")
    policies: Dict[str, TenantPolicy] = {}
    for name, fields in doc.items():
        if not isinstance(fields, dict):
            raise ValueError(f"tenant {name!r} config is not an object")
        unknown = set(fields) - {"rate", "burst", "priority"}
        if unknown:
            raise ValueError(
                f"tenant {name!r}: unknown field(s) {sorted(unknown)}")
        rate = fields.get("rate")
        if rate is not None and not isinstance(rate, (int, float)):
            raise ValueError(f"tenant {name!r}: rate is not a number")
        policies[name] = TenantPolicy(
            name=name,
            rate=float(rate) if rate is not None else None,
            burst=int(fields.get("burst", 64)),
            priority=int(fields.get("priority", 1)),
        )
    return policies


class TokenBucket:
    """Continuous-refill token bucket."""

    def __init__(self, rate: Optional[float], burst: int,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self.tokens = float(burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self.clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        if self.rate is not None:
            self.tokens = min(float(self.burst),
                              self.tokens + elapsed * self.rate)

    def try_take(self) -> bool:
        """Consume one token; False when the bucket is empty."""
        if self.rate is None:
            return True
        self._refill()
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Maps tenants to policies and enforces their token buckets."""

    def __init__(self, policies: Optional[Dict[str, TenantPolicy]] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policies = dict(policies or {})
        self.policies.setdefault(DEFAULT_TENANT,
                                 TenantPolicy(name=DEFAULT_TENANT))
        self.clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self.rate_limited = 0

    def policy(self, tenant: str) -> TenantPolicy:
        """The tenant's policy; unknown tenants inherit the default
        policy's limits (so a typo cannot escape admission control)."""
        if tenant in self.policies:
            return self.policies[tenant]
        default = self.policies[DEFAULT_TENANT]
        return TenantPolicy(name=tenant, rate=default.rate,
                            burst=default.burst, priority=default.priority)

    def admit(self, tenant: object) -> TenantPolicy:
        """Charge one request to *tenant*'s bucket.  Returns the
        policy (the scheduler needs its priority); raises
        :class:`~repro.gateway.protocol.RateLimited` on an empty
        bucket and :class:`~repro.gateway.protocol.BadRequest` for a
        non-string tenant."""
        if tenant is None:
            tenant = DEFAULT_TENANT
        if not isinstance(tenant, str) or not tenant:
            raise BadRequest(f"tenant is not a non-empty string: {tenant!r}")
        policy = self.policy(tenant)
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(policy.rate, policy.burst, clock=self.clock)
            self._buckets[tenant] = bucket
        if not bucket.try_take():
            self.rate_limited += 1
            raise RateLimited(
                f"tenant {tenant!r} exceeded {policy.rate:g} requests/s "
                f"(burst {policy.burst})")
        return policy


class PendingQueue:
    """One shard's priority-ordered pending queue.

    Kept sorted by ``(-priority, seq)``: index 0 is the
    highest-priority oldest entry (next to dispatch), the tail is the
    lowest-priority newest entry (first to shed).  Items are opaque to
    the queue; the scheduler stores its job objects.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[int, int, object]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, priority: int, seq: int, item: object) -> None:
        bisect.insort(self._entries, (-priority, seq, item))

    def pop(self) -> object:
        return self._entries.pop(0)[2]

    def tail_priority(self) -> Optional[int]:
        """Priority of the entry :meth:`shed_tail` would remove."""
        return -self._entries[-1][0] if self._entries else None

    def shed_tail(self) -> object:
        return self._entries.pop()[2]

    def remove(self, item: object) -> bool:
        for i, (_, _, entry) in enumerate(self._entries):
            if entry is item:
                del self._entries[i]
                return True
        return False


def shed_lowest(queues: Iterable[PendingQueue],
                incoming_priority: int) -> Tuple[Optional[PendingQueue], bool]:
    """Pick the victim when total queued work crosses the high-water
    mark.  Returns ``(queue, admit_incoming)``: the queue whose tail
    should be shed (None when nothing is queued), and whether the
    incoming request should still be admitted.  The incoming request
    loses ties — queued work has already waited."""
    victim: Optional[PendingQueue] = None
    lowest: Optional[int] = None
    for queue in queues:
        tail = queue.tail_priority()
        if tail is None:
            continue
        if lowest is None or tail < lowest:
            lowest = tail
            victim = queue
    if victim is None:
        return None, False
    if lowest is not None and incoming_priority > lowest:
        return victim, True
    return None, False
