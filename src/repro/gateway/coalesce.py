"""Request coalescing: identical in-flight work runs once.

Two requests are *identical* when they share a coalesce key — the
analysis content digest for ``analyze`` (source + fixpoint config +
code version), the query digest for ``query`` — so by construction
they would compute byte-identical results.  The first arrival becomes
the **leader** and is actually scheduled; later arrivals **attach**
to the same :class:`InflightJob` and receive every event the leader's
computation publishes (including a replay of events that already
streamed before they attached).  Each subscriber renders its own
``repro.gwframe/1`` frames, so the shared events fan out with
per-request ``id``/``seq`` while the bodies stay bit-identical.

The table only coalesces *in-flight* work: the job is dropped from
the table the moment its final event publishes, after which the next
identical request goes to the cache instead.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

#: One published event: (kind, body, final). Bodies are shared (and
#: therefore treated as immutable) across subscribers.
Event = Tuple[str, Dict[str, object], bool]


class InflightJob:
    """One in-flight computation plus its subscribers."""

    def __init__(self, key: str, kind: str) -> None:
        self.key = key
        self.kind = kind               # "analyze" | "query"
        self.events: List[Event] = []  # published so far (for replay)
        self.subscribers: List[asyncio.Queue] = []
        self.done = False
        #: Followers that attached after the leader (the coalesce count).
        self.followers = 0
        #: Scheduler state, owned by the gateway (opaque here).
        self.meta: Dict[str, object] = {}

    def subscribe(self) -> asyncio.Queue:
        """Attach one response stream; already-published events are
        replayed into the fresh queue so late followers still see the
        Andersen preview before the final frame."""
        queue: asyncio.Queue = asyncio.Queue()
        for event in self.events:
            queue.put_nowait(event)
        if not self.done:
            self.subscribers.append(queue)
        return queue

    def publish(self, kind: str, body: Dict[str, object],
                final: bool = False) -> None:
        if self.done:
            raise RuntimeError(f"job {self.key} already finished")
        event: Event = (kind, body, final)
        self.events.append(event)
        for queue in self.subscribers:
            queue.put_nowait(event)
        if final:
            self.done = True
            self.subscribers.clear()


class CoalesceTable:
    """Key -> in-flight job, with coalesce accounting."""

    def __init__(self) -> None:
        self._inflight: Dict[str, InflightJob] = {}
        self.coalesced = 0      # follower attaches to live jobs
        self.started = 0        # leader jobs created

    def __len__(self) -> int:
        return len(self._inflight)

    def get(self, key: str) -> Optional[InflightJob]:
        return self._inflight.get(key)

    def join(self, key: str, kind: str) -> Tuple[InflightJob, bool]:
        """Attach to (or create) the in-flight job for *key*.
        Returns ``(job, is_leader)``."""
        job = self._inflight.get(key)
        if job is not None:
            job.followers += 1
            self.coalesced += 1
            return job, False
        job = InflightJob(key, kind)
        self._inflight[key] = job
        self.started += 1
        return job, True

    def finish(self, key: str) -> None:
        """Drop *key* from the table (idempotent).  Call after the
        final event published — later identical requests must go to
        the cache, not to a dead job."""
        self._inflight.pop(key, None)
