"""Synthetic request traces for gateway load testing.

A trace is a list of serve/gateway request entries drawn from a fixed
program catalogue with a **zipfian digest distribution**: the
rank-``r`` program is requested with probability proportional to
``1 / r**s``.  That is the shape of real analysis-as-a-service
traffic — most submissions are re-analyses of a few hot programs —
and it is exactly the regime consistent-hash routing, coalescing, and
the artifact cache are built for.

Everything is driven by one seeded :class:`random.Random`, so a trace
is a pure function of ``(programs, n, seed, s, tenants,
query_fraction)`` — the load-test harness pregenerates it, replays it
byte-identically, and the CI smoke job replays a miniature one.  No
wall-clock anywhere.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

#: Default skew exponent: mildly steeper than classic zipf(1.0), a
#: common fit for content-addressed request logs.
DEFAULT_SKEW = 1.1


def zipf_weights(n: int, s: float = DEFAULT_SKEW) -> List[float]:
    """Normalized zipf(s) probabilities for ranks ``1..n``."""
    if n < 1:
        raise ValueError(f"need at least one rank, got {n}")
    raw = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def _cumulative(weights: Sequence[float]) -> List[float]:
    out: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        out.append(acc)
    out[-1] = 1.0  # close the rounding gap so draws never fall off
    return out


class TraceGenerator:
    """Deterministic zipfian request-trace generator.

    *programs* is the rank-ordered catalogue (rank 1 = hottest): each
    entry is a serve-style program reference such as ``{"workload":
    "raytrace"}`` or ``{"file": "x.mc"}`` plus optional ``config``.
    *tenants* cycle through the draws deterministically weighted by
    their share entries, and *query_fraction* of the requests are
    emitted as demand queries against the drawn program, using the
    per-program ``query_vars`` hints when present.
    """

    def __init__(self, programs: Sequence[Dict[str, object]],
                 seed: int = 0, s: float = DEFAULT_SKEW,
                 tenants: Sequence[str] = ("default",),
                 query_fraction: float = 0.0) -> None:
        if not programs:
            raise ValueError("trace needs a non-empty program catalogue")
        if not tenants:
            raise ValueError("trace needs at least one tenant")
        if not 0.0 <= query_fraction <= 1.0:
            raise ValueError("query_fraction must be within [0, 1]")
        self.programs = [dict(p) for p in programs]
        self.seed = seed
        self.s = s
        self.tenants = list(tenants)
        self.query_fraction = query_fraction
        self._cdf = _cumulative(zipf_weights(len(self.programs), s))

    def _draw_rank(self, rng: random.Random) -> int:
        u = rng.random()
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def generate(self, n: int) -> List[Dict[str, object]]:
        """The first *n* trace entries.  Rerunning with the same
        constructor arguments yields the identical list."""
        rng = random.Random(self.seed)
        tenant_cycle = itertools.cycle(self.tenants)
        entries: List[Dict[str, object]] = []
        for i in range(n):
            rank = self._draw_rank(rng)
            program = self.programs[rank]
            entry: Dict[str, object] = {
                key: value for key, value in program.items()
                if key != "query_vars"
            }
            query_vars = program.get("query_vars")
            if query_vars and rng.random() < self.query_fraction:
                entry["op"] = "query"
                entry["var"] = rng.choice(list(query_vars))  # type: ignore[arg-type]
            entry["tenant"] = next(tenant_cycle)
            entry["id"] = i
            entries.append(entry)
        return entries

    def rank_counts(self, entries: Sequence[Dict[str, object]]
                    ) -> List[int]:
        """Requests per catalogue rank in *entries* (diagnostics and
        the skew test)."""
        index: Dict[str, int] = {}
        for rank, program in enumerate(self.programs):
            index[_program_key(program)] = rank
        counts = [0] * len(self.programs)
        for entry in entries:
            counts[index[_program_key(entry)]] += 1
        return counts


def _program_key(entry: Dict[str, object]) -> str:
    for key in ("workload", "file", "source"):
        if key in entry:
            return f"{key}:{entry[key]}:{entry.get('scale', 0)}"
    raise ValueError(f"entry names no program: {entry!r}")


def skew_error(counts: Sequence[int], s: float = DEFAULT_SKEW,
               top: Optional[int] = None) -> float:
    """Largest relative error between the observed rank frequencies
    and the ideal zipf(s) weights over the *top* ranks (defaults to
    the head half — tail ranks of a finite sample are noise).  The
    trace tests pin this under a tolerance for a fixed seed."""
    total = sum(counts)
    if total == 0:
        raise ValueError("empty trace")
    weights = zipf_weights(len(counts), s)
    top = top if top is not None else max(1, len(counts) // 2)
    worst = 0.0
    for rank in range(top):
        observed = counts[rank] / total
        ideal = weights[rank]
        worst = max(worst, abs(observed - ideal) / ideal)
    return worst


def catalogue_from_workloads(names: Sequence[str],
                             scale: int = 1) -> List[Dict[str, object]]:
    """A rank-ordered catalogue of registered workloads (rank order =
    the given name order)."""
    return [{"workload": name, "scale": scale} for name in names]
