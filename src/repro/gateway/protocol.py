"""Gateway wire format: streaming frames, input hardening, and the
minimal HTTP/1.1 surface.

The gateway speaks two transports over one TCP port (auto-detected
from the first request line):

- **framed JSONL** — one JSON request object per line, one or more
  ``repro.gwframe/1`` frame objects per line back.  The same entry
  forms as ``repro serve`` (see :mod:`repro.service.requests`), plus
  ``tenant`` (admission-control bucket), ``stream`` (progressive
  frames), and ``id`` (echoed on every frame of the response);
- **HTTP/1.1** — stdlib-only parsing of ``POST /analyze``,
  ``POST /query``, ``GET /metrics``, and ``GET /healthz``. Streaming
  responses use chunked transfer encoding with one frame per chunk
  (``application/x-ndjson``), so ``curl -N`` shows the Andersen
  preview frame before the FSAM refinement lands.

A streamed ``analyze`` response is a sequence of frames sharing the
request's ``id``::

    {"schema": "repro.gwframe/1", "seq": 0, "kind": "andersen",
     "final": false, "body": {...degraded-shape Andersen facts...}}
    {"schema": "repro.gwframe/1", "seq": 1, "kind": "result",
     "final": true, "body": {...the ordinary serve response...}}

Non-streamed responses are a single ``final`` frame.  Errors —
including the 429-style admission-control records — are ``kind:
"error"`` frames whose body matches the serve loop's structured error
shape, extended with a numeric ``code``.

Input hardening (shared with ``repro serve``): request lines larger
than ``max_request_bytes`` (default 1 MiB) and JSON nested deeper
than ``max_depth`` are rejected with a structured error record
*before* any unbounded ``json.loads`` work happens — the depth check
is a linear pre-scan of the raw text, so a hostile
100k-deep-bracket line can never reach the recursive parser.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.schemas import GWFRAME_SCHEMA

#: Hardening defaults, shared by the gateway and ``repro serve``.
DEFAULT_MAX_REQUEST_BYTES = 1 << 20     # 1 MiB per request line/body
DEFAULT_MAX_JSON_DEPTH = 64

#: Frame kinds a response may carry, in the order they can appear.
FRAME_KINDS = ("andersen", "result", "error")


class RequestError(ValueError):
    """A request the gateway refuses: carries the HTTP-style status
    code and a stable machine-readable type for the error record."""

    code = 400

    @property
    def kind(self) -> str:
        return type(self).__name__


class BadRequest(RequestError):
    code = 400


class RequestTooLarge(RequestError):
    code = 413


class RequestTooDeep(RequestError):
    code = 400


class RateLimited(RequestError):
    """Per-tenant token bucket empty — the 429-style shed record."""
    code = 429


class QueueFull(RequestError):
    """Admission queue over its high-water mark; lowest-priority work
    is shed with this record."""
    code = 429


class GatewayClosing(RequestError):
    """The gateway is draining for shutdown; no new work admitted."""
    code = 503


# -- input hardening --------------------------------------------------------


def json_depth(text: str) -> int:
    """Maximum bracket-nesting depth of *text*, counted by a linear
    scan that skips string literals (and their escapes).  Runs before
    ``json.loads`` so pathological nesting never reaches the recursive
    parser; malformed text simply returns the depth seen so far and is
    left for the real parser to reject."""
    depth = 0
    max_depth = 0
    in_string = False
    escaped = False
    for ch in text:
        if in_string:
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
            continue
        if ch == '"':
            in_string = True
        elif ch in "[{":
            depth += 1
            if depth > max_depth:
                max_depth = depth
        elif ch in "]}":
            depth -= 1
    return max_depth


def parse_request_text(text: str,
                       max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
                       max_depth: int = DEFAULT_MAX_JSON_DEPTH) -> Dict:
    """One hardened request parse: size cap, depth pre-scan, then
    ``json.loads``.  Raises a :class:`RequestError` subclass with a
    structured-record-ready type/code on refusal."""
    encoded_size = len(text.encode("utf-8", errors="replace"))
    if max_request_bytes is not None and encoded_size > max_request_bytes:
        raise RequestTooLarge(
            f"request is {encoded_size} bytes "
            f"(limit {max_request_bytes}); raise --max-request-bytes "
            "to accept it")
    depth = json_depth(text)
    if max_depth is not None and depth > max_depth:
        raise RequestTooDeep(
            f"request JSON nests {depth} levels deep (limit {max_depth})")
    try:
        entry = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BadRequest(f"request is not valid JSON: {exc}") from exc
    if not isinstance(entry, dict):
        raise BadRequest(
            f"request is not a JSON object: {type(entry).__name__}")
    return entry


# -- frames -----------------------------------------------------------------


def make_frame(kind: str, body: Dict[str, object], *, seq: int,
               final: bool,
               request_id: object = None) -> Dict[str, object]:
    """One ``repro.gwframe/1`` frame."""
    frame: Dict[str, object] = {
        "schema": GWFRAME_SCHEMA,
        "seq": seq,
        "kind": kind,
        "final": final,
        "body": body,
    }
    if request_id is not None:
        frame["id"] = request_id
    return frame


def error_body(exc: BaseException,
               request_id: object = None) -> Dict[str, object]:
    """The serve-compatible structured error record, extended with the
    gateway's numeric code (429 for admission sheds, etc.)."""
    error: Dict[str, object] = {
        "type": exc.kind if isinstance(exc, RequestError)
        else type(exc).__name__,
        "message": str(exc),
        "code": exc.code if isinstance(exc, RequestError) else 500,
    }
    body: Dict[str, object] = {"status": "error", "error": error}
    if request_id is not None:
        body["id"] = request_id
    return body


def error_frame(exc: BaseException, *, seq: int = 0,
                request_id: object = None) -> Dict[str, object]:
    return make_frame("error", error_body(exc, request_id), seq=seq,
                      final=True, request_id=request_id)


def validate_gwframe(doc: object) -> Dict[str, object]:
    """Check *doc* against ``repro.gwframe/1``; returns it unchanged
    (same contract as the other validators)."""
    def _check(cond: bool, message: str) -> None:
        if not cond:
            raise ValueError(f"invalid gwframe: {message}")

    _check(isinstance(doc, dict), "frame is not an object")
    assert isinstance(doc, dict)
    _check(doc.get("schema") == GWFRAME_SCHEMA,
           f"schema is {doc.get('schema')!r}, expected {GWFRAME_SCHEMA!r}")
    _check(doc.get("kind") in FRAME_KINDS,
           f"kind {doc.get('kind')!r} not in {FRAME_KINDS}")
    seq = doc.get("seq")
    _check(isinstance(seq, int) and not isinstance(seq, bool) and seq >= 0,
           "seq is not a non-negative integer")
    _check(isinstance(doc.get("final"), bool), "final is not a bool")
    body = doc.get("body")
    _check(isinstance(body, dict), "body is not an object")
    assert isinstance(body, dict)
    if doc["kind"] == "error":
        error = body.get("error")
        _check(body.get("status") == "error"
               and isinstance(error, dict)
               and isinstance(error.get("type"), str)
               and isinstance(error.get("code"), int),
               "error frame body lacks a structured error record")
    return doc


def validate_gwframe_stream(frames: List[Dict[str, object]]
                            ) -> List[Dict[str, object]]:
    """One response's frames: validates each, checks ``seq`` is dense
    from 0, exactly the last frame is ``final``, and an ``andersen``
    preview (when present) precedes the result."""
    if not frames:
        raise ValueError("invalid gwframe stream: empty")
    for i, frame in enumerate(frames):
        validate_gwframe(frame)
        if frame["seq"] != i:
            raise ValueError(
                f"invalid gwframe stream: frame {i} has seq {frame['seq']}")
        if frame["final"] != (i == len(frames) - 1):
            raise ValueError(
                f"invalid gwframe stream: frame {i} final={frame['final']}")
    kinds = [frame["kind"] for frame in frames]
    if "andersen" in kinds and "result" in kinds \
            and kinds.index("andersen") > kinds.index("result"):
        raise ValueError(
            "invalid gwframe stream: andersen preview after the result")
    return frames


# -- minimal HTTP/1.1 -------------------------------------------------------

#: Request-line methods that flag a connection as HTTP rather than
#: framed JSONL (the transport auto-detection peek).
HTTP_METHODS = ("GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "PATCH")

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def looks_like_http(first_line: bytes) -> bool:
    head = first_line.split(b" ", 1)[0]
    try:
        return head.decode("ascii") in HTTP_METHODS
    except UnicodeDecodeError:
        return False


def parse_http_head(request_line: bytes, header_lines: List[bytes]
                    ) -> Tuple[str, str, Dict[str, str], Dict[str, str]]:
    """Parse the request line + headers of one HTTP/1.1 request.
    Returns ``(method, path, query, headers)`` with header names
    lower-cased.  Raises :class:`BadRequest` on malformed input."""
    try:
        parts = request_line.decode("ascii").strip().split(" ")
        method, target, version = parts[0], parts[1], parts[2]
    except (UnicodeDecodeError, IndexError) as exc:
        raise BadRequest("malformed HTTP request line") from exc
    if not version.startswith("HTTP/1."):
        raise BadRequest(f"unsupported HTTP version {version!r}")
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    headers: Dict[str, str] = {}
    for raw in header_lines:
        line = raw.decode("latin-1").strip()
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequest(f"malformed HTTP header {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method, split.path, query, headers


def http_response(status: int, body: bytes,
                  content_type: str = "application/json",
                  extra_headers: Optional[Dict[str, str]] = None) -> bytes:
    """One complete non-streamed HTTP/1.1 response (connection
    closes after it)."""
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def http_stream_head(status: int = 200,
                     content_type: str = "application/x-ndjson") -> bytes:
    """The head of a chunked streaming response; follow with
    :func:`http_chunk` per frame and :func:`http_stream_tail`."""
    return ("\r\n".join([
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        "Transfer-Encoding: chunked",
        "Connection: close",
    ]) + "\r\n\r\n").encode("ascii")


def http_chunk(data: bytes) -> bytes:
    return f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n"


def http_stream_tail() -> bytes:
    return b"0\r\n\r\n"
