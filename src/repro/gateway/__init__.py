"""repro.gateway — the asyncio multi-tenant analysis gateway.

The front end that turns the batch/serve analysis service into a
long-running network service: one TCP port speaking framed JSONL and
minimal HTTP/1.1, backed by persistent warm shard workers.

- :mod:`repro.gateway.protocol` — ``repro.gwframe/1`` frames, input
  hardening (size/depth caps), the stdlib HTTP/1.1 surface;
- :mod:`repro.gateway.routing` — consistent-hash placement of program
  digests onto shards;
- :mod:`repro.gateway.coalesce` — identical in-flight requests share
  one computation;
- :mod:`repro.gateway.admission` — per-tenant token buckets and
  bounded priority queues;
- :mod:`repro.gateway.shards` — the persistent worker processes and
  their asyncio-side pool;
- :mod:`repro.gateway.server` — the :class:`Gateway` tying it all
  together;
- :mod:`repro.gateway.trace` — deterministic zipfian request traces
  for the load-test harness and CI smoke job.
"""

from repro.gateway.server import Gateway, GatewayOptions, run_gateway

__all__ = ["Gateway", "GatewayOptions", "run_gateway"]
