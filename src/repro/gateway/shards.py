"""Persistent shard workers: the gateway's execution backend.

:mod:`repro.service.pool` spawns one process per *attempt* — right
for batch jobs, wasteful for a gateway whose whole point is warm
per-program state.  A **shard** is instead a long-lived worker
process that keeps, across requests:

- an in-memory LRU of recent :class:`AnalysisArtifact` results
  (``cache: "hot"`` — served without touching disk);
- the shared on-disk :class:`~repro.service.cache.ArtifactCache`
  (plus func/query stores) under the gateway cache root;
- a :class:`~repro.service.runner.QueryRunner` whose per-program
  demand pipelines stay warm between queries;
- a digest -> request memo, so the parent can resend hot programs as
  a bare ``{"digest": ...}`` reference instead of shipping the source
  text on every request.

Consistent-hash routing (:mod:`repro.gateway.routing`) pins each
program digest to one shard, so this state is *per-program* warm, not
just per-process.

The parent side (:class:`ShardPool`) lives inside the gateway's
asyncio loop: one duplex pipe per shard, a daemon reader thread per
shard that posts worker messages back onto the loop
(``call_soon_threadsafe``), at most one in-flight job per shard
(queued work waits in the gateway's admission queues), parent-enforced
wall-clock deadlines (the shard is killed and respawned, the same
hard lever the batch pool has), and crash detection with respawn —
the gateway rebalances the dead shard's keys onto the ring survivors
until the respawn lands.

Worker messages are small dicts; every job answer is a sequence of
``(kind, body, final)`` events matching the gateway's frame model:
an optional ``andersen`` preview, then exactly one final ``result``
or ``error``.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional

from repro.obs import Observer
from repro.service.requests import AnalysisRequest, QueryRequest

#: Per-shard memo caps inside the worker process.
HOT_ARTIFACTS = 32
REQUEST_MEMO = 512


# -- worker-process side ----------------------------------------------------


def _response_body(request: AnalysisRequest, digest: str, artifact,
                   cache_state: str, seconds: float,
                   attempts: int = 1) -> Dict[str, object]:
    """The serve-compatible response record for one analyze answer,
    extended with the artifact payload digest so clients (and the
    load-test harness) can check bit-identity against batch oracles
    without shipping the whole artifact."""
    body: Dict[str, object] = {
        "name": request.name,
        "digest": digest,
        "status": "degraded" if artifact.degraded else "ok",
        "cache": cache_state,
        "seconds": round(seconds, 6),
        "attempts": attempts,
        "summary": dict(artifact.summary),
        "payload_digest": artifact.payload_digest(),
    }
    if artifact.degraded:
        body["degraded_reason"] = artifact.degraded_reason
    if request.request_id is not None:
        body["span"] = request.request_id
    return body


class _ShardState:
    """Everything one worker process keeps warm between requests."""

    def __init__(self, shard_id: int, options: Dict[str, object]) -> None:
        from repro.service.cache import (
            ArtifactCache, FuncArtifactStore, QueryArtifactStore,
        )
        from repro.service.runner import QueryRunner

        self.shard_id = shard_id
        self.profile = bool(options.get("profile", True))
        cache_root = options.get("cache_root")
        max_bytes = options.get("cache_max_bytes")
        self.cache = ArtifactCache(cache_root, max_bytes=max_bytes) \
            if cache_root else None
        self.funcstore = FuncArtifactStore(cache_root) \
            if cache_root and options.get("incremental", True) else None
        querystore = QueryArtifactStore(cache_root) if cache_root else None
        self.queryrunner = QueryRunner(
            querystore=querystore,
            max_pipelines=int(options.get("max_pipelines", 4)))
        self.querystore = querystore
        # digest -> AnalysisRequest (so ref payloads need no source).
        self.requests: "OrderedDict[str, AnalysisRequest]" = OrderedDict()
        # digest -> AnalysisArtifact (in-memory warm answers).
        self.hot: "OrderedDict[str, object]" = OrderedDict()

    def remember(self, digest: str, request: AnalysisRequest) -> None:
        self.requests[digest] = request
        self.requests.move_to_end(digest)
        while len(self.requests) > REQUEST_MEMO:
            self.requests.popitem(last=False)

    def keep_hot(self, digest: str, artifact) -> None:
        self.hot[digest] = artifact
        self.hot.move_to_end(digest)
        while len(self.hot) > HOT_ARTIFACTS:
            self.hot.popitem(last=False)

    def flush_stores(self, obs: Observer) -> None:
        if self.cache is not None:
            self.cache.flush_obs(obs)
        if self.funcstore is not None:
            self.funcstore.flush_obs(obs)
        if self.querystore is not None:
            self.querystore.flush_obs(obs)


def _run_analyze(state: _ShardState, msg: Dict[str, object], conn) -> None:
    from repro.fsam.config import AnalysisTimeout
    from repro.service.artifacts import artifact_from_andersen
    from repro.service.runner import run_degraded, run_full

    jid = msg["jid"]
    payload = msg["payload"]
    if "source" not in payload:
        digest = str(payload["digest"])
        request = state.requests.get(digest)
        if request is None:
            # The parent believed this shard had seen the digest (a
            # respawn or memo eviction says otherwise): ask for the
            # full payload once.
            conn.send({"jid": jid, "kind": "error", "final": True,
                       "retryable": "unknown-digest",
                       "body": {"status": "error",
                                "error": {"type": "UnknownDigest",
                                          "message": digest,
                                          "code": 500}}})
            return
        request.request_id = payload.get("request_id")
    else:
        request = AnalysisRequest.from_payload(payload)
        digest = request.digest()
        state.remember(digest, request)

    start = time.perf_counter()
    artifact = state.hot.get(digest)
    cache_state = "hot" if artifact is not None else None
    if artifact is None and state.cache is not None:
        artifact = state.cache.get(digest)
        if artifact is not None:
            cache_state = "hit"
    if artifact is not None:
        state.keep_hot(digest, artifact)
        conn.send({"jid": jid, "kind": "result", "final": True,
                   "body": _response_body(request, digest, artifact,
                                          cache_state,
                                          time.perf_counter() - start,
                                          attempts=0)})
        return

    # Cold: run the pipeline, streaming the Andersen preview when
    # asked.  The preview artifact doubles as the degraded answer if
    # the budget exhausts mid-solve — the ladder's partial result.
    preview: List[object] = []

    def on_preanalysis(module, andersen) -> None:
        pre = artifact_from_andersen(request.name, module, andersen,
                                     reason="preview")
        preview.append(pre)
        body = _response_body(request, digest, pre, "miss",
                              time.perf_counter() - start)
        body["status"] = "preview"
        body.pop("degraded_reason", None)
        conn.send({"jid": jid, "kind": "andersen", "final": False,
                   "body": body})

    obs = Observer(name=request.request_id or request.name,
                   track_memory=False) if state.profile else None
    try:
        artifact = run_full(request, funcstore=state.funcstore, obs=obs,
                            on_preanalysis=on_preanalysis
                            if msg.get("stream") else None)
    except AnalysisTimeout:
        if preview:
            artifact = preview[0]
            artifact.degraded_reason = "budget-exhausted"
        else:
            artifact = run_degraded(request)
    if state.cache is not None:
        state.cache.put(digest, artifact)   # degraded never stored
    if not artifact.degraded:
        state.keep_hot(digest, artifact)
    message: Dict[str, object] = {
        "jid": jid, "kind": "result", "final": True,
        "body": _response_body(request, digest, artifact, "miss",
                               time.perf_counter() - start)}
    if obs is not None:
        message["obs"] = obs.to_metrics_dict()
    conn.send(message)


def _run_query(state: _ShardState, msg: Dict[str, object], conn) -> None:
    from repro.service.runner import QueryRunner  # noqa: F401 (typing aid)

    jid = msg["jid"]
    payload = msg["payload"]
    request = AnalysisRequest.from_payload(payload["request"])
    query = QueryRequest(request=request, var=payload["var"],
                         line=payload.get("line"),
                         obj=bool(payload.get("obj", False)))
    state.remember(request.digest(), request)
    body = state.queryrunner.run(query)
    if request.request_id is not None:
        body["span"] = request.request_id
    conn.send({"jid": jid, "kind": "result", "final": True, "body": body})


def _close_inherited_sockets(keep_fd: int) -> None:
    """Close every socket fd the fork copied from the parent except
    our own pipe.  A forked worker otherwise holds duplicates of the
    gateway's listener, live client connections, and the other shards'
    pipes — so a client never sees EOF while any worker (especially
    one respawned mid-connection) keeps its socket alive."""
    import os
    import stat
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except OSError:  # pragma: no cover - non-Linux fallback
        fds = list(range(3, 256))
    for fd in fds:
        if fd == keep_fd or fd < 3:
            continue
        try:
            if stat.S_ISSOCK(os.fstat(fd).st_mode):
                os.close(fd)
        except OSError:
            continue


def shard_worker_main(conn, shard_id: int,
                      options: Dict[str, object]) -> None:
    """Worker-process entry: serve jobs from the pipe until shutdown
    (or pipe EOF — a vanished parent must not leave orphans)."""
    _close_inherited_sockets(conn.fileno())
    state = _ShardState(shard_id, options)
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op = msg.get("op")
            if op == "shutdown":
                obs = Observer(name=f"shard{shard_id}", track_memory=False)
                state.flush_stores(obs)
                try:
                    conn.send({"op": "bye", "shard": shard_id,
                               "obs": obs.to_metrics_dict()})
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass
                break
            if op != "job":
                continue
            try:
                if msg.get("job_kind") == "query":
                    _run_query(state, msg, conn)
                else:
                    _run_analyze(state, msg, conn)
            except Exception as exc:  # noqa: BLE001 - reported upstream
                from repro.gateway.protocol import error_body
                try:
                    conn.send({"jid": msg.get("jid"), "kind": "error",
                               "final": True, "body": error_body(exc)})
                except (BrokenPipeError, OSError):  # pragma: no cover
                    break
    finally:
        conn.close()


# -- parent (asyncio) side --------------------------------------------------


class ShardHandle:
    """Parent-side state of one shard worker."""

    __slots__ = ("shard_id", "proc", "conn", "reader", "alive",
                 "inflight", "seen_digests", "generation", "kill_reason")

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.proc = None
        self.conn = None
        self.reader: Optional[threading.Thread] = None
        self.alive = False
        self.inflight = None            # the gateway's job object
        self.seen_digests: set = set()  # digests this incarnation holds
        self.generation = 0
        self.kill_reason: Optional[str] = None


class ShardPool:
    """N persistent shard workers under an asyncio parent.

    The pool is transport- and policy-free: the gateway owns routing,
    queues, coalescing, and retries, and registers callbacks —
    ``on_event(shard_id, jid, kind, body, final, obs)`` for worker
    answers, ``on_shard_down(shard_id, jobs, reason)`` when a worker
    dies (with whatever was in flight), and ``on_shard_up(shard_id)``
    after a (re)spawn.
    """

    def __init__(self, workers: int,
                 options: Optional[Dict[str, object]] = None,
                 start_method: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError(f"need at least one shard, got {workers}")
        self.workers = workers
        self.options = dict(options or {})
        self._ctx = multiprocessing.get_context(start_method)
        self.handles: Dict[int, ShardHandle] = {
            shard_id: ShardHandle(shard_id) for shard_id in range(workers)}
        self.on_event: Callable = lambda *a, **k: None
        self.on_shard_down: Callable = lambda *a, **k: None
        self.on_shard_up: Callable = lambda *a, **k: None
        self.respawns = 0
        self._loop = None
        self._closing = False
        self._bye_obs: List[Dict[str, object]] = []

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        import asyncio
        self._loop = asyncio.get_running_loop()
        for handle in self.handles.values():
            self._spawn(handle)
            self.on_shard_up(handle.shard_id)

    def _spawn(self, handle: ShardHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=shard_worker_main,
            args=(child_conn, handle.shard_id, self.options),
            daemon=True)
        proc.start()
        child_conn.close()
        handle.proc = proc
        handle.conn = parent_conn
        handle.alive = True
        handle.inflight = None
        handle.seen_digests = set()
        handle.generation += 1
        generation = handle.generation
        reader = threading.Thread(
            target=self._read_loop, args=(handle, generation),
            name=f"shard{handle.shard_id}-reader", daemon=True)
        handle.reader = reader
        reader.start()

    def _read_loop(self, handle: ShardHandle, generation: int) -> None:
        """Blocking pipe reader (daemon thread): posts every worker
        message onto the event loop; EOF/reset means the worker died."""
        conn = handle.conn
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                self._post(self._handle_death, handle, generation, None)
                return
            if msg.get("op") == "bye":
                self._post(self._handle_bye, handle, generation, msg)
                return
            self._post(self._handle_message, handle, generation, msg)

    def _post(self, fn, *args) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(fn, *args)
            except RuntimeError:  # pragma: no cover - loop torn down
                pass

    # -- event-loop callbacks ----------------------------------------------

    def _handle_message(self, handle: ShardHandle, generation: int,
                        msg: Dict[str, object]) -> None:
        if generation != handle.generation:
            return  # stale incarnation
        jid = msg.get("jid")
        final = bool(msg.get("final"))
        if final:
            handle.inflight = None
        self.on_event(handle.shard_id, jid, msg.get("kind"),
                      msg.get("body"), final, msg.get("obs"),
                      msg.get("retryable"))

    def _handle_death(self, handle: ShardHandle, generation: int,
                      _msg) -> None:
        if generation != handle.generation or self._closing:
            return
        handle.alive = False
        lost = handle.inflight
        handle.inflight = None
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass
        if handle.proc is not None:
            handle.proc.join(timeout=1.0)
        reason = handle.kill_reason or "worker-crash"
        handle.kill_reason = None
        self.on_shard_down(handle.shard_id,
                           [lost] if lost is not None else [], reason)
        # Respawn immediately: the ring re-adds the shard via
        # on_shard_up, ending the rebalance window.
        self.respawns += 1
        self._spawn(handle)
        self.on_shard_up(handle.shard_id)

    def _handle_bye(self, handle: ShardHandle, generation: int,
                    msg: Dict[str, object]) -> None:
        if msg.get("obs") is not None:
            self._bye_obs.append(msg["obs"])
        handle.alive = False

    # -- job dispatch ------------------------------------------------------

    def submit(self, shard_id: int, jid: int, job,
               message: Dict[str, object]) -> None:
        """Send one job message to *shard_id* (the gateway guarantees
        the shard is idle).  Raises ``BrokenPipeError`` when the shard
        just died — the caller treats it like a crash."""
        handle = self.handles[shard_id]
        if not handle.alive or handle.conn is None:
            raise BrokenPipeError(f"shard {shard_id} is down")
        handle.inflight = job
        message = dict(message)
        message["op"] = "job"
        message["jid"] = jid
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError):
            handle.inflight = None
            raise BrokenPipeError(f"shard {shard_id} pipe broke") from None

    def idle(self, shard_id: int) -> bool:
        handle = self.handles[shard_id]
        return handle.alive and handle.inflight is None

    def kill(self, shard_id: int, reason: str) -> None:
        """Hard-kill a shard (deadline enforcement).  Death flows
        through the reader thread's EOF like any crash, tagged with
        *reason*."""
        handle = self.handles[shard_id]
        if handle.proc is None or not handle.alive:
            return
        handle.kill_reason = reason
        handle.proc.terminate()

    # -- digest memo (source-elision protocol) ------------------------------

    def mark_seen(self, shard_id: int, digest: str) -> None:
        self.handles[shard_id].seen_digests.add(digest)

    def has_seen(self, shard_id: int, digest: str) -> bool:
        return digest in self.handles[shard_id].seen_digests

    def forget(self, shard_id: int, digest: str) -> None:
        self.handles[shard_id].seen_digests.discard(digest)

    # -- shutdown ----------------------------------------------------------

    async def shutdown(self, timeout: float = 5.0
                       ) -> List[Dict[str, object]]:
        """Graceful stop: ask every live shard to flush + exit, join
        the processes, and return the collected ``bye`` telemetry
        snapshots (one ``repro.metrics/1`` doc per shard)."""
        import asyncio
        self._closing = True
        for handle in self.handles.values():
            if handle.alive and handle.conn is not None:
                try:
                    handle.conn.send({"op": "shutdown"})
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + timeout
        for handle in self.handles.values():
            if handle.proc is None:
                continue
            while handle.proc.is_alive() \
                    and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
            if handle.proc.is_alive():
                handle.proc.terminate()
                handle.proc.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
        # Give reader threads a beat to deliver their bye messages.
        await asyncio.sleep(0)
        return list(self._bye_obs)
