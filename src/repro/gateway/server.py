"""The asyncio analysis gateway.

One TCP port, two transports (auto-detected from the first request
line): framed JSONL — the ``repro serve`` entry format plus
``tenant`` / ``stream`` / ``id`` fields, answered with
``repro.gwframe/1`` frames — and a minimal stdlib HTTP/1.1 surface
(``POST /analyze``, ``POST /query``, ``GET /metrics``,
``GET /healthz``), where streamed responses arrive as chunked
``application/x-ndjson``.

Request path, in order:

1. **admission** — the tenant's token bucket is charged
   (:mod:`repro.gateway.admission`); an empty bucket answers with a
   structured 429 record immediately;
2. **resolution** — the entry's program reference resolves to an
   :class:`~repro.service.requests.AnalysisRequest` payload + content
   digest, through a parent-side memo so a hot workload's source text
   is generated once, not once per request;
3. **hot cache** — a small parent-side LRU of recent final response
   bodies answers repeats without touching any worker;
4. **coalescing** — identical in-flight digests share one computation
   (:mod:`repro.gateway.coalesce`); followers replay the leader's
   frames, counted in ``gateway.coalesced``;
5. **routing + queueing** — the digest routes on the consistent-hash
   ring to its home shard; work queues per shard in priority order,
   shedding the lowest-priority entry (429) past the global
   high-water mark;
6. **execution** — the shard worker answers with an optional
   streamed Andersen preview frame and a final result; a parent
   wall-clock deadline hard-kills the shard and degrades the answer,
   reusing the already-streamed preview when one arrived.

Worker death reroutes only the dead shard's keys (ring arc) and
retries its in-flight job once before degrading — the same ladder the
batch pool walks, at gateway scale.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.gateway import protocol
from repro.gateway.admission import (
    AdmissionController, PendingQueue, TenantPolicy, shed_lowest,
)
from repro.gateway.coalesce import CoalesceTable, InflightJob
from repro.gateway.protocol import (
    BadRequest, GatewayClosing, QueueFull, RequestError, RequestTooLarge,
)
from repro.gateway.routing import HashRing
from repro.gateway.shards import ShardPool
from repro.obs import Observer
from repro.service.digest import query_digest
from repro.service.requests import request_from_entry

#: Parent-side memo/LRU caps.
ENTRY_MEMO = 256
HOT_RESPONSES = 256

#: Keys a request entry may carry beyond the program reference.
_CONTROL_KEYS = ("op", "var", "line", "obj", "tenant", "id", "stream")


@dataclass
class GatewayOptions:
    """Everything ``repro gateway`` configures."""

    host: str = "127.0.0.1"
    port: int = 0                       # 0 = ephemeral (tests)
    workers: int = 2
    max_queue: int = 64                 # global queued-work high-water mark
    tenants: Optional[Dict[str, TenantPolicy]] = None
    cache_root: Optional[str] = None
    cache_max_bytes: Optional[int] = None
    timeout: Optional[float] = None     # default per-request wall clock
    max_request_bytes: int = protocol.DEFAULT_MAX_REQUEST_BYTES
    max_json_depth: int = protocol.DEFAULT_MAX_JSON_DEPTH
    metrics_interval: Optional[float] = None
    metrics_stream: Optional[object] = None   # writable text stream
    base_dir: str = "."
    incremental: bool = True
    profile: bool = True
    start_method: Optional[str] = None


@dataclass
class _Job:
    """One leader computation owned by the scheduler."""

    jid: int
    op: str                              # "analyze" | "query"
    key: str                             # coalesce key
    inflight: InflightJob
    payload: Dict[str, object]           # AnalysisRequest payload
    digest: str                          # program content digest
    query: Optional[Tuple[str, Optional[int], bool]] = None
    timeout: Optional[float] = None
    priority: int = 1
    attempts: int = 0
    shard: Optional[int] = None
    enqueued: float = 0.0
    preview: Optional[Dict[str, object]] = None
    timer: Optional[asyncio.TimerHandle] = None
    sent_full: bool = False              # full source crossed the pipe


class Gateway:
    """The server object; create, ``await start()``, then either
    ``await serve_forever()`` (CLI) or talk to ``gw.port`` (tests)."""

    def __init__(self, options: Optional[GatewayOptions] = None) -> None:
        self.options = options or GatewayOptions()
        self.obs = Observer(name="gateway", track_memory=False)
        self.admission = AdmissionController(self.options.tenants)
        self.coalesce = CoalesceTable()
        self.ring = HashRing()
        self.pool = ShardPool(
            self.options.workers,
            options={
                "cache_root": self.options.cache_root,
                "cache_max_bytes": self.options.cache_max_bytes,
                "incremental": self.options.incremental,
                "profile": self.options.profile,
            },
            start_method=self.options.start_method)
        self.pool.on_event = self._on_event
        self.pool.on_shard_down = self._on_shard_down
        self.pool.on_shard_up = self._on_shard_up
        self.queues: Dict[int, PendingQueue] = {
            shard: PendingQueue() for shard in range(self.options.workers)}
        self._jobs: Dict[int, _Job] = {}
        self._jid = 0
        self._seq = 0                    # admission order for queue ties
        self._entry_memo: "OrderedDict[str, Tuple[Dict[str, object], str]]" \
            = OrderedDict()
        self._hot: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: set = set()       # open client connections
        self._conn_tasks: set = set()    # their handler tasks
        self._metrics_task: Optional[asyncio.Task] = None
        self._degrading = 0              # fallbacks running off-loop
        self._closing = False
        self._drained = asyncio.Event()
        self.port: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.options.host, self.options.port,
            limit=self.options.max_request_bytes + 65536)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.options.metrics_interval and self.options.metrics_stream:
            self._metrics_task = asyncio.ensure_future(self._metrics_loop())

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, self.begin_shutdown)

    def begin_shutdown(self) -> None:
        """Stop admitting work; :meth:`serve_forever` finishes once
        in-flight and queued requests drain."""
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
        self._maybe_drained()

    async def serve_forever(self) -> None:
        """Run until :meth:`begin_shutdown` (usually via
        SIGINT/SIGTERM), then drain in-flight work, stop the shards,
        and flush a final metrics snapshot."""
        await self._drained.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Close lingering client connections so their handler tasks
        # finish before the loop tears down (a cancelled handler logs
        # noisily from asyncio.streams).
        for writer in list(self._writers):
            try:
                writer.close()
            except (OSError, RuntimeError):  # pragma: no cover
                pass
        if self._conn_tasks:
            try:
                await asyncio.wait_for(
                    asyncio.gather(*list(self._conn_tasks),
                                   return_exceptions=True),
                    timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover
                pass
        if self._metrics_task is not None:
            self._metrics_task.cancel()
        for snapshot in await self.pool.shutdown():
            self.obs.merge_metrics(snapshot)
        stream = self.options.metrics_stream
        if stream is not None:
            json.dump(self.metrics(), stream, sort_keys=True)
            stream.write("\n")
            stream.flush()

    def _maybe_drained(self) -> None:
        if self._closing and not self._jobs and not self._degrading \
                and not any(len(q) for q in self.queues.values()):
            self._drained.set()

    # -- telemetry ---------------------------------------------------------

    def metrics(self) -> Dict[str, object]:
        """The gateway's ``repro.metrics/1`` snapshot."""
        self.obs.count("gateway.coalesced",
                       self.coalesce.coalesced
                       - self.obs.counter("gateway.coalesced"))
        self.obs.count("gateway.rate_limited",
                       self.admission.rate_limited
                       - self.obs.counter("gateway.rate_limited"))
        self.obs.gauge("gateway.inflight", len(self._jobs))
        self.obs.gauge("gateway.queue_depth",
                       sum(len(q) for q in self.queues.values()))
        for shard, queue in self.queues.items():
            self.obs.gauge(f"gateway.queue_depth.shard{shard}", len(queue))
        self.obs.gauge("gateway.hot_entries", len(self._hot))
        self.obs.gauge("gateway.shards", len(self.ring))
        return self.obs.to_metrics_dict()

    async def _metrics_loop(self) -> None:
        stream = self.options.metrics_stream
        while True:
            await asyncio.sleep(self.options.metrics_interval)
            json.dump(self.metrics(), stream, sort_keys=True)
            stream.write("\n")
            stream.flush()

    # -- request intake ----------------------------------------------------

    def _resolve(self, entry: Dict[str, object]
                 ) -> Tuple[str, Dict[str, object], str,
                            Optional[Tuple[str, Optional[int], bool]]]:
        """Entry -> ``(op, request payload, program digest, query)``.
        Program resolution (workload source generation, file reads,
        config parsing, digesting) runs once per distinct program via
        the entry memo."""
        op = entry.get("op", "analyze")
        if op not in ("analyze", "query"):
            raise BadRequest(f"unknown request op: {op!r}")
        program_entry = {key: value for key, value in entry.items()
                         if key not in _CONTROL_KEYS}
        memo_key = json.dumps(program_entry, sort_keys=True, default=str)
        cached = self._entry_memo.get(memo_key)
        if cached is None:
            try:
                request = request_from_entry(program_entry,
                                             base_dir=self.options.base_dir)
            except (ValueError, OSError, KeyError) as exc:
                raise BadRequest(str(exc)) from exc
            cached = (request.to_payload(), request.digest())
            self._entry_memo[memo_key] = cached
            while len(self._entry_memo) > ENTRY_MEMO:
                self._entry_memo.popitem(last=False)
        else:
            self._entry_memo.move_to_end(memo_key)
            self.obs.count("gateway.entry_memo_hits", 1)
        payload, digest = cached
        if op == "analyze":
            return op, payload, digest, None
        var = entry.get("var")
        if not isinstance(var, str) or not var:
            raise BadRequest("query entries need a non-empty 'var' string")
        line = entry.get("line")
        if line is not None and not isinstance(line, int):
            raise BadRequest(f"query line is not an integer: {line!r}")
        obj = entry.get("obj", False)
        if not isinstance(obj, bool):
            raise BadRequest(f"query obj is not a boolean: {obj!r}")
        return op, payload, digest, (var, line, obj)

    def submit(self, entry: Dict[str, object]) -> asyncio.Queue:
        """Admit one parsed request entry; returns the queue its
        ``(kind, body, final)`` events arrive on.  Raises a
        :class:`~repro.gateway.protocol.RequestError` when the request
        is refused outright (rate limit, bad entry, closing)."""
        if self._closing:
            raise GatewayClosing("gateway is draining for shutdown")
        self.obs.count("gateway.requests", 1)
        policy = self.admission.admit(entry.get("tenant"))
        op, payload, digest, query = self._resolve(entry)
        if op == "query":
            key = "q:" + query_digest(digest, query[0], line=query[1],
                                      obj=query[2])
        else:
            key = "a:" + digest
        hot = self._hot.get(key)
        if hot is not None:
            self._hot.move_to_end(key)
            self.obs.count("gateway.hot_hits", 1)
            body = dict(hot)
            body["cache"] = "hot"
            queue: asyncio.Queue = asyncio.Queue()
            queue.put_nowait(("result", body, True))
            return queue
        job, leader = self.coalesce.join(key, op)
        events = job.subscribe()
        if not leader:
            self.obs.count("gateway.coalesce_attach", 1)
            return events
        self._jid += 1
        timeout = payload.get("timeout")
        gjob = _Job(jid=self._jid, op=op, key=key, inflight=job,
                    payload=payload, digest=digest, query=query,
                    timeout=timeout if timeout is not None
                    else self.options.timeout,
                    priority=policy.priority, enqueued=time.monotonic())
        self._enqueue(gjob)
        return events

    def _enqueue(self, gjob: _Job) -> None:
        shard = self.ring.route(gjob.digest)
        if shard is None:  # pragma: no cover - ring never stays empty
            self._finish_with_error(
                gjob, RequestError("no shards available"))
            return
        total = sum(len(q) for q in self.queues.values())
        if total >= self.options.max_queue:
            victim_queue, admit = shed_lowest(self.queues.values(),
                                              gjob.priority)
            if not admit:
                self.obs.count("gateway.shed", 1)
                self._finish_with_error(gjob, QueueFull(
                    f"gateway queue is full ({total} pending) and tenant "
                    f"priority {gjob.priority} is not above the lowest "
                    "queued work"))
                return
            victim = victim_queue.shed_tail()
            self.obs.count("gateway.shed", 1)
            self._finish_with_error(victim, QueueFull(
                "shed by higher-priority work past the gateway "
                f"high-water mark ({self.options.max_queue})"))
        self._seq += 1
        self.queues[shard].push(gjob.priority, self._seq, gjob)
        self._pump(shard)

    def _finish_with_error(self, gjob: _Job, exc: RequestError) -> None:
        if not gjob.inflight.done:
            gjob.inflight.publish("error", protocol.error_body(exc),
                                  final=True)
        self.coalesce.finish(gjob.key)
        self._maybe_drained()

    # -- shard scheduling --------------------------------------------------

    def _pump(self, shard: int) -> None:
        queue = self.queues[shard]
        while len(queue) and self.pool.idle(shard):
            gjob: _Job = queue.pop()  # type: ignore[assignment]
            self._dispatch(shard, gjob)

    def _dispatch(self, shard: int, gjob: _Job) -> None:
        gjob.shard = shard
        gjob.attempts += 1
        span = f"g{gjob.jid:04d}"
        if gjob.op == "query":
            message: Dict[str, object] = {
                "job_kind": "query",
                "payload": {"request": dict(gjob.payload, request_id=span),
                            "var": gjob.query[0], "line": gjob.query[1],
                            "obj": gjob.query[2]},
            }
        elif self.pool.has_seen(shard, gjob.digest) and not gjob.sent_full:
            # Source elision: the shard already holds this program —
            # send the digest reference, not the (possibly large)
            # source text.
            message = {"job_kind": "analyze", "stream": True,
                       "payload": {"digest": gjob.digest,
                                   "request_id": span}}
            self.obs.count("gateway.ref_sends", 1)
        else:
            message = {"job_kind": "analyze", "stream": True,
                       "payload": dict(gjob.payload, request_id=span)}
            gjob.sent_full = True
        try:
            self.pool.submit(shard, gjob.jid, gjob, message)
        except BrokenPipeError:
            # The shard died under us; the death callback rebalances.
            self._seq += 1
            self.queues[shard].push(gjob.priority, self._seq, gjob)
            return
        self._jobs[gjob.jid] = gjob
        self.obs.count("gateway.dispatched", 1)
        if gjob.op == "analyze":
            self.pool.mark_seen(shard, gjob.digest)
        if gjob.timeout is not None:
            loop = asyncio.get_event_loop()
            gjob.timer = loop.call_later(gjob.timeout, self._deadline,
                                         gjob.jid, shard)

    def _deadline(self, jid: int, shard: int) -> None:
        gjob = self._jobs.get(jid)
        if gjob is None or gjob.shard != shard:
            return
        self.obs.count("gateway.deadline_kills", 1)
        self.pool.kill(shard, "wall-clock-timeout")

    # -- shard callbacks ---------------------------------------------------

    def _on_event(self, shard: int, jid: int, kind: str,
                  body: Dict[str, object], final: bool,
                  obs_snapshot: Optional[Dict[str, object]],
                  retryable: Optional[str]) -> None:
        gjob = self._jobs.get(jid)
        if gjob is None:
            return  # stale (post-deadline) message
        if not final:
            if kind == "andersen":
                gjob.preview = body
                if not gjob.inflight.done:
                    gjob.inflight.publish("andersen", body)
            return
        if gjob.timer is not None:
            gjob.timer.cancel()
            gjob.timer = None
        del self._jobs[jid]
        if retryable == "unknown-digest" and not gjob.sent_full:
            # The shard's memo lost this digest (respawn/eviction):
            # resend once with the full source. The shard is idle
            # again, so dispatch re-runs immediately.
            self.pool.forget(shard, gjob.digest)
            self.obs.count("gateway.ref_retries", 1)
            self._dispatch(shard, gjob)
            return
        if obs_snapshot is not None:
            self.obs.merge_metrics(obs_snapshot)
        if kind == "error":
            self.obs.count("gateway.errors", 1)
            if not gjob.inflight.done:
                gjob.inflight.publish("error", body, final=True)
        else:
            self._record_result(gjob, body)
            if not gjob.inflight.done:
                gjob.inflight.publish("result", body, final=True)
        self.coalesce.finish(gjob.key)
        self._maybe_drained()
        self._pump(shard)

    def _record_result(self, gjob: _Job, body: Dict[str, object]) -> None:
        wall = time.monotonic() - gjob.enqueued
        self.obs.observe("gateway.request_seconds", wall)
        self.obs.observe(f"gateway.{gjob.op}_seconds", wall)
        cache = body.get("cache")
        if cache in ("hot", "hit", "warm", "miss"):
            self.obs.count(f"gateway.worker_cache_{cache}", 1)
        if body.get("status") == "degraded":
            self.obs.count("gateway.degraded", 1)
        elif body.get("status") == "ok":
            self._hot[gjob.key] = body
            self._hot.move_to_end(gjob.key)
            while len(self._hot) > HOT_RESPONSES:
                self._hot.popitem(last=False)

    def _on_shard_down(self, shard: int, lost: List[_Job],
                       reason: str) -> None:
        self.ring.remove(shard)
        self.obs.count("gateway.shard_deaths", 1)
        for gjob in lost:
            if gjob.timer is not None:
                gjob.timer.cancel()
                gjob.timer = None
            self._jobs.pop(gjob.jid, None)
            if reason == "wall-clock-timeout":
                self._degrade(gjob, reason)
            elif gjob.attempts < 2:
                # Crash: retry once, rerouted around the dead shard.
                self.obs.count("gateway.retries", 1)
                gjob.sent_full = False
                self._enqueue(gjob)
            else:
                self._degrade(gjob, reason)
        # Queued (not yet dispatched) work reroutes to the survivors.
        pending = self.queues[shard]
        moved = 0
        while len(pending):
            gjob = pending.pop()  # type: ignore[assignment]
            self._enqueue(gjob)
            moved += 1
        if moved:
            self.obs.count("gateway.rebalanced", moved)
        self._maybe_drained()

    def _on_shard_up(self, shard: int) -> None:
        self.ring.add(shard)
        self._pump(shard)

    def _degrade(self, gjob: _Job, reason: str) -> None:
        """Terminal fallback for a killed/crashed attempt: reuse the
        already-streamed Andersen preview when one arrived; otherwise
        compute the Andersen-only artifact off-loop."""
        self.obs.count("gateway.degraded", 1)
        if gjob.op == "query":
            # Queries have no degraded form — exactness is their point.
            self._finish_with_error(gjob, RequestError(
                f"query attempt lost to {reason}"))
            return
        if gjob.preview is not None:
            body = dict(gjob.preview)
            body["status"] = "degraded"
            body["degraded_reason"] = reason
            body["seconds"] = round(time.monotonic() - gjob.enqueued, 6)
            if not gjob.inflight.done:
                gjob.inflight.publish("result", body, final=True)
            self.coalesce.finish(gjob.key)
            self._maybe_drained()
            return

        def compute() -> Dict[str, object]:
            from repro.gateway.shards import _response_body
            from repro.service.requests import AnalysisRequest
            from repro.service.runner import run_degraded
            request = AnalysisRequest.from_payload(gjob.payload)
            artifact = run_degraded(request, reason=reason)
            return _response_body(request, gjob.digest, artifact, "miss",
                                  time.monotonic() - gjob.enqueued)

        def publish(task: "asyncio.Future") -> None:
            self._degrading -= 1
            try:
                body = task.result()
            except BaseException as exc:  # noqa: BLE001
                self._finish_with_error(gjob, RequestError(str(exc)))
                return
            if not gjob.inflight.done:
                gjob.inflight.publish("result", body, final=True)
            self.coalesce.finish(gjob.key)
            self._maybe_drained()

        self._degrading += 1
        loop = asyncio.get_event_loop()
        future = loop.run_in_executor(None, compute)
        asyncio.ensure_future(future).add_done_callback(publish)

    # -- transports --------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            try:
                first = await reader.readline()
            except ValueError:
                writer.write((json.dumps(protocol.error_frame(
                    RequestTooLarge("request line over the size limit")),
                    sort_keys=True) + "\n").encode("utf-8"))
                await writer.drain()
                return
            if not first:
                return
            if protocol.looks_like_http(first):
                await self._http(first, reader, writer)
            else:
                await self._jsonl(first, reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- framed JSONL ------------------------------------------------------

    async def _jsonl(self, first: bytes, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        lock = asyncio.Lock()
        tasks: List[asyncio.Task] = []
        line: Optional[bytes] = first
        while line:
            text = line.decode("utf-8", errors="replace").strip()
            if text:
                tasks.append(asyncio.ensure_future(
                    self._jsonl_request(text, writer, lock)))
            try:
                line = await reader.readline()
            except ValueError:
                await self._write_frame(writer, lock, protocol.error_frame(
                    RequestTooLarge("request line over the size limit")))
                break
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _write_frame(self, writer: asyncio.StreamWriter,
                           lock: asyncio.Lock,
                           frame: Dict[str, object]) -> None:
        data = (json.dumps(frame, sort_keys=True) + "\n").encode("utf-8")
        async with lock:
            writer.write(data)
            await writer.drain()

    async def _jsonl_request(self, text: str,
                             writer: asyncio.StreamWriter,
                             lock: asyncio.Lock) -> None:
        request_id: object = None
        try:
            entry = protocol.parse_request_text(
                text, max_request_bytes=self.options.max_request_bytes,
                max_depth=self.options.max_json_depth)
            request_id = entry.get("id")
            stream = bool(entry.get("stream", False))
            events = self.submit(entry)
        except RequestError as exc:
            self.obs.count("gateway.refused", 1)
            await self._write_frame(
                writer, lock,
                protocol.error_frame(exc, request_id=request_id))
            return
        seq = 0
        while True:
            kind, body, final = await events.get()
            if not final and not stream:
                continue
            await self._write_frame(writer, lock, protocol.make_frame(
                kind, body, seq=seq, final=final, request_id=request_id))
            seq += 1
            if final:
                return

    # -- HTTP --------------------------------------------------------------

    async def _http(self, request_line: bytes,
                    reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter) -> None:
        headers: List[bytes] = []
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            headers.append(line)
            if len(headers) > 100:
                writer.write(protocol.http_response(
                    400, b'{"error": "too many headers"}'))
                await writer.drain()
                return
        try:
            method, path, query, header_map = protocol.parse_http_head(
                request_line, headers)
        except BadRequest as exc:
            writer.write(protocol.http_response(
                exc.code, json.dumps(protocol.error_body(exc),
                                     sort_keys=True).encode("utf-8")))
            await writer.drain()
            return
        if method == "GET" and path == "/healthz":
            body = {"status": "ok", "shards": len(self.ring),
                    "inflight": len(self._jobs)}
            writer.write(protocol.http_response(
                200, json.dumps(body, sort_keys=True).encode("utf-8")))
            await writer.drain()
            return
        if method == "GET" and path == "/metrics":
            writer.write(protocol.http_response(
                200, json.dumps(self.metrics(),
                                sort_keys=True).encode("utf-8")))
            await writer.drain()
            return
        if path not in ("/analyze", "/query"):
            writer.write(protocol.http_response(
                404, b'{"error": "unknown path"}'))
            await writer.drain()
            return
        if method != "POST":
            writer.write(protocol.http_response(
                405, b'{"error": "use POST"}'))
            await writer.drain()
            return
        await self._http_request(path, query, header_map, reader, writer)

    async def _http_request(self, path: str, query: Dict[str, str],
                            headers: Dict[str, str],
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        request_id: object = None
        try:
            try:
                length = int(headers.get("content-length", "0"))
            except ValueError as exc:
                raise BadRequest("bad Content-Length") from exc
            if length > self.options.max_request_bytes:
                raise RequestTooLarge(
                    f"request body is {length} bytes "
                    f"(limit {self.options.max_request_bytes})")
            body = await reader.readexactly(length) if length else b""
            entry = protocol.parse_request_text(
                body.decode("utf-8", errors="replace"),
                max_request_bytes=self.options.max_request_bytes,
                max_depth=self.options.max_json_depth)
            if path == "/query":
                entry["op"] = "query"
            request_id = entry.get("id")
            stream = query.get("stream", "") in ("1", "true", "yes") \
                or bool(entry.get("stream", False))
            events = self.submit(entry)
        except RequestError as exc:
            self.obs.count("gateway.refused", 1)
            writer.write(protocol.http_response(
                exc.code,
                json.dumps(protocol.error_body(exc, request_id=request_id),
                           sort_keys=True).encode("utf-8")))
            await writer.drain()
            return
        except asyncio.IncompleteReadError:
            writer.write(protocol.http_response(
                400, b'{"error": "truncated body"}'))
            await writer.drain()
            return
        if stream:
            writer.write(protocol.http_stream_head())
            await writer.drain()
            seq = 0
            while True:
                kind, frame_body, final = await events.get()
                frame = protocol.make_frame(kind, frame_body, seq=seq,
                                            final=final,
                                            request_id=request_id)
                writer.write(protocol.http_chunk(
                    (json.dumps(frame, sort_keys=True) + "\n")
                    .encode("utf-8")))
                await writer.drain()
                seq += 1
                if final:
                    break
            writer.write(protocol.http_stream_tail())
            await writer.drain()
            return
        while True:
            kind, frame_body, final = await events.get()
            if final:
                break
        status = 200
        if kind == "error":
            status = frame_body.get("error", {}).get("code", 500)
        frame = protocol.make_frame(kind, frame_body, seq=0, final=True,
                                    request_id=request_id)
        writer.write(protocol.http_response(
            status, (json.dumps(frame, sort_keys=True) + "\n")
            .encode("utf-8")))
        await writer.drain()


async def run_gateway(options: GatewayOptions) -> Dict[str, object]:
    """CLI entry: start, serve until a signal, drain, and return the
    final metrics snapshot."""
    gateway = Gateway(options)
    await gateway.start()
    gateway.install_signal_handlers()
    await gateway.serve_forever()
    return gateway.metrics()
