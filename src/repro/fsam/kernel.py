"""Vectorized delta-propagation kernel for the sparse solver.

PR 4's delta engine cut solver *iterations* roughly in half on every
workload, but wall-clock barely moved: the worklist still pays the
full CPython toll — a heap pop, an isinstance dispatch, and a round
of dict bookkeeping — for every visit, and ~80% of those visits are
**pure merge pseudo-statements** (memory phis, formal-in/out,
call-mus, non-fork call/join chis) whose entire transfer function is
``state |= delta``. Sparse value-flow analysis makes the inner loop
bit-set algebra with no control flow left to interpret; this module
makes the solver actually run it that way.

Batching scheme
---------------

Per-SCC-rank batching alone does not pay here: measured rank groups
have a *median size of one* (merge chains are long and thin), so the
kernel collapses the whole merge subgraph instead:

1. **Plan** (:func:`build_plan`): the merge-only subgraph is split
   from the DUG (``DUG.merge_topology``), SCC-condensed with the same
   dense Tarjan as the scheduler, and every SCC is mapped to the set
   of **boundary rows** it can reach — merge nodes with at least one
   out-edge into a load/store/fork-chi. Because merge transfers are
   pure unions, a delta injected anywhere in the subgraph reaches
   exactly the states of the rows downstream of it; the plan makes
   that reachability a precomputed flat array per SCC.
2. **Inject** (:meth:`_KernelState.inject`): when a scalar transfer
   (a store, a fork chi) grows a state feeding the merge subgraph,
   the solver hands the kernel the raw delta mask. Deltas buffer and
   coalesce per SCC — repeated stores into the same chain merge into
   one pending mask.
3. **Flush** (:meth:`_KernelState.flush`): the buffered masks are
   swept over their reachable boundary rows in one fused
   compare-union pass (``new = delta & ~acc; acc |= new``), and only
   rows that actually grew deliver their new bits to the scalar
   worklist. Interior merge states are *not* touched at all during
   the solve.
4. **Materialize** (:meth:`_KernelState.materialize`): after the
   fixpoint, one forward sweep over the SCC DAG reconstructs every
   interior state from the injected masks, interning each final mask
   once. Within an SCC every member provably converges to the same
   union, so per-SCC masks are exact, and the result is bit-identical
   to what the scalar engine would have stored (pinned by
   ``tests/fsam/test_differential.py``).

Why the fixpoint is preserved: merge transfers are union-monotone and
kill nothing, so the state of a merge node at fixpoint is exactly the
union of every delta injected at rows that reach it — which is what
the reach sweep (for boundary rows, online) and the materialize DP
(for interior rows, once) compute. Classification-changing transfers
(loads discovering a container, strong/weak store reclassification,
fork-handle chis) never enter the kernel; they stay on the scalar
path and observe boundary states that are exact after every flush.

Backends
--------

Two interchangeable backends implement the flush sweep, selected by
``FSAMConfig.kernel``:

- :class:`NumpyKernel` (``kernel="numpy"``, the ``"auto"`` choice
  when numpy imports): boundary accumulators live in a
  ``(rows, words)`` uint64 matrix; a flush gathers the batch into
  flat index arrays and runs the compare-union as a handful of
  vectorized ops per coalesced delta.
- :class:`PythonKernel` (``kernel="python"``, the ``"auto"``
  fallback): accumulators are interpreter big-ints — each sweep step
  is a single arbitrary-precision OR over the whole universe — with
  ``array``-module row-index tables. No third-party imports.

Setting ``REPRO_NO_NUMPY=1`` in the environment hides numpy from this
module (the CI no-numpy job uses it to exercise the fallback end to
end without uninstalling anything).
"""

from __future__ import annotations

import os
from array import array
from heapq import heappop, heappush
from typing import Dict, Iterator, List, Optional, Tuple

from repro.graphs.scc import topo_ranks_dense
from repro.ir.values import MemObject
from repro.memssa.dug import DUG, DUGNode

if os.environ.get("REPRO_NO_NUMPY"):
    _np = None
else:
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - image always has numpy
        _np = None

# Sentinel rank for "no pending boundary work" — larger than any real
# topological rank.
NO_RANK = 1 << 60


def numpy_available() -> bool:
    return _np is not None


# Minimum plan.max_reach for "auto" to pick the numpy backend. The
# vectorized sweep amortises its fixed costs (buffer conversions,
# fancy indexing) over the rows one injection reaches; measured
# crossover is well under 16 rows, and thin-chain plans (max_reach of
# 1-4 is typical) run faster on interpreter big-ints.
AUTO_NUMPY_MIN_REACH = 16


def backend_name(kernel: str) -> Optional[str]:
    """Resolve an ``FSAMConfig.kernel`` value to a backend name.

    ``"auto"`` prefers numpy and falls back to pure Python — the
    solver further demotes an auto-numpy choice to ``"python"`` when
    the built plan has no wide fan-out (``max_reach`` below
    :data:`AUTO_NUMPY_MIN_REACH`), where vectorization cannot pay;
    ``"none"`` disables the kernel (scalar delta engine only);
    explicit ``"numpy"`` fails loudly when numpy is unavailable so a
    bench claiming the vectorized path cannot silently run the
    fallback.
    """
    if kernel == "none":
        return None
    if kernel == "auto":
        return "numpy" if _np is not None else "python"
    if kernel == "python":
        return "python"
    if kernel == "numpy":
        if _np is None:
            raise RuntimeError(
                "FSAMConfig.kernel='numpy' but numpy is not importable "
                "(REPRO_NO_NUMPY set, or numpy missing); use 'python' "
                "or 'auto'")
        return "numpy"
    raise ValueError(
        f"unknown kernel backend {kernel!r}; expected 'auto', 'numpy', "
        f"'python', or 'none'")


class KernelPlan:
    """Precomputed merge-subgraph structure shared by both backends.

    Built once per solve by :func:`build_plan`; holds only flat
    arrays and per-SCC tables, no per-visit state.
    """

    __slots__ = (
        "rows",            # List[DUGNode]: merge nodes, row-indexed
        "scc_of_row",      # List[int]: row -> SCC id (== topo rank)
        "scc_of_uid",      # Dict[int, int]: merge node uid -> SCC id
        "n_sccs",
        "scc_preds",       # List[Tuple[int, ...]]: SCC DAG predecessors
        "scc_succs",       # List[Tuple[int, ...]]: SCC DAG successors
        "boundary_rows",   # array('l'): boundary id -> row index
        "boundary_edges",  # List[List[(obj, dst, thread)]] per boundary id
        "brow_of_uid",     # Dict[int, int]: boundary node uid -> boundary id
        "first_rank",      # List[int]: SCC -> min global rank of reachable
                           #   boundary rows (NO_RANK when none)
        "max_reach",       # int: widest per-SCC boundary reach set
        "scc_members",     # List[List[DUGNode]]: SCC -> member rows
        "_reach_bits",     # List[int]: SCC -> bitset over boundary ids
        "_reach_cache",    # Dict[int, array]: SCC -> decoded boundary ids
    )

    def __init__(self) -> None:
        self._reach_cache: Dict[int, array] = {}

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_boundary(self) -> int:
        return len(self.boundary_rows)

    def reach(self, scc: int) -> array:
        """Boundary ids reachable from *scc*, decoded lazily (most
        SCCs never receive an injection)."""
        cached = self._reach_cache.get(scc)
        if cached is None:
            ids = array("l")
            bits = self._reach_bits[scc]
            while bits:
                low = bits & -bits
                ids.append(low.bit_length() - 1)
                bits ^= low
            cached = self._reach_cache[scc] = ids
        return cached


def build_plan(dug: DUG, merge_nodes: List[DUGNode],
               global_rank: Dict[int, int],
               thread_to_load,
               keep_uids=None) -> KernelPlan:
    """Condense the merge subgraph and precompute boundary reach.

    *global_rank* is the value-flow topological rank map (for the
    solver's flush gate); *thread_to_load* is the set of
    ``(src_uid, obj_id, dst_uid)`` keys whose boundary deliveries take
    the unconditional [THREAD-VF] channel.

    With *keep_uids* (the demand-driven solver's slice), boundary
    edges whose destination falls outside the set are dropped: the
    slice is predecessor-closed, so a dst outside it can never feed a
    slice member and delivering to it would only queue dead work. A
    row whose boundary edges are all dropped stops being a boundary
    row, and ``first_rank`` gates come from the kept readers only.
    """
    plan = KernelPlan()
    plan.rows = merge_nodes
    internal, boundary = dug.merge_topology(merge_nodes)
    if keep_uids is not None:
        boundary = [[(obj, dst) for obj, dst in edges
                     if dst.uid in keep_uids]
                    for edges in boundary]
    # One shared rank per SCC, ranks topologically ascending and unique
    # per SCC: the rank doubles as the SCC id.
    scc_of_row, n_sccs = topo_ranks_dense(internal)
    plan.scc_of_row = scc_of_row
    plan.n_sccs = n_sccs
    plan.scc_of_uid = {node.uid: scc_of_row[i]
                       for i, node in enumerate(merge_nodes)}
    members: List[List[DUGNode]] = [[] for _ in range(n_sccs)]
    for i, node in enumerate(merge_nodes):
        members[scc_of_row[i]].append(node)
    plan.scc_members = members

    boundary_rows = array("l")
    boundary_edges: List[List[Tuple[MemObject, DUGNode, bool]]] = []
    brow_of_uid: Dict[int, int] = {}
    scc_bbits = [0] * n_sccs
    scc_min_rank = [NO_RANK] * n_sccs
    for i, edges in enumerate(boundary):
        if not edges:
            continue
        node = merge_nodes[i]
        bid = len(boundary_rows)
        boundary_rows.append(i)
        brow_of_uid[node.uid] = bid
        uid = node.uid
        boundary_edges.append([
            (obj, dst, (uid, obj.id, dst.uid) in thread_to_load)
            for obj, dst in edges])
        scc = scc_of_row[i]
        scc_bbits[scc] |= 1 << bid
        # Gate on the earliest *reader* (boundary successor), not the
        # row itself: a buffered delta only has to land before the
        # worklist evaluates something that can observe it, and every
        # observer — pend delivery or an ``_in_values`` re-read — is a
        # graph successor of the row. dst ranks are >= the row's own,
        # so this strictly coalesces more injections per flush.
        for _obj, dst, _thread in boundary_edges[-1]:
            grank = global_rank[dst.uid]
            if grank < scc_min_rank[scc]:
                scc_min_rank[scc] = grank
    plan.boundary_rows = boundary_rows
    plan.boundary_edges = boundary_edges
    plan.brow_of_uid = brow_of_uid

    # Condensed SCC DAG edges (dedup via sets, small).
    succ_sets: List[set] = [set() for _ in range(n_sccs)]
    pred_sets: List[set] = [set() for _ in range(n_sccs)]
    for i, succs in enumerate(internal):
        s = scc_of_row[i]
        for j in succs:
            t = scc_of_row[j]
            if t != s:
                succ_sets[s].add(t)
                pred_sets[t].add(s)
    plan.scc_preds = [tuple(sorted(p)) for p in pred_sets]
    plan.scc_succs = [tuple(sorted(s)) for s in succ_sets]

    # Reverse-topological DP: which boundary rows does each SCC reach,
    # and how early (in global rank) can that reach first matter.
    reach_bits = scc_bbits  # reuse: own boundary members seed the DP
    first_rank = scc_min_rank
    for s in range(n_sccs - 1, -1, -1):
        bits = reach_bits[s]
        fr = first_rank[s]
        for t in succ_sets[s]:
            bits |= reach_bits[t]
            if first_rank[t] < fr:
                fr = first_rank[t]
        reach_bits[s] = bits
        first_rank[s] = fr
    plan._reach_bits = reach_bits
    plan.first_rank = first_rank
    # Widest sweep any single injection can trigger — the shape signal
    # the "auto" backend choice keys on (vectorization pays off with
    # fan-out, not on thin chains).
    plan.max_reach = max((m.bit_count() for m in reach_bits), default=0)
    return plan


class _KernelState:
    """Backend-independent buffering, accounting, and materialize.

    Subclasses store the boundary accumulators and implement the
    flush sweep (:meth:`_apply`) and :meth:`boundary_mask`.
    """

    name = "base"

    def __init__(self, plan: KernelPlan) -> None:
        self.plan = plan
        # Coalesced pending injections: SCC id -> delta mask.
        self._buf: Dict[int, int] = {}
        # Everything ever injected (flushed), for materialize.
        self._inj_total: Dict[int, int] = {}
        self.pending_min_rank = NO_RANK
        self.batches = 0
        self.injections = 0
        self.updates = 0

    def inject(self, scc: int, mask: int) -> None:
        """Buffer a delta entering the merge subgraph at *scc*."""
        self.injections += 1
        buf = self._buf
        cur = buf.get(scc)
        if cur is None:
            buf[scc] = mask
            fr = self.plan.first_rank[scc]
            if fr < self.pending_min_rank:
                self.pending_min_rank = fr
        else:
            buf[scc] = cur | mask

    @property
    def has_pending(self) -> bool:
        return bool(self._buf)

    def flush(self, deliver) -> None:
        """Sweep the buffered deltas over their reachable boundary
        rows; call ``deliver(boundary_id, new_bits_mask)`` for each
        row that grew."""
        buf = self._buf
        if not buf:
            return
        self.batches += 1
        inj = self._inj_total
        for scc, mask in buf.items():
            cur = inj.get(scc)
            inj[scc] = mask if cur is None else cur | mask
            self._apply(scc, mask, deliver)
        buf.clear()
        self.pending_min_rank = NO_RANK

    def _apply(self, scc: int, mask: int, deliver) -> None:
        raise NotImplementedError

    def boundary_mask(self, boundary_id: int) -> int:
        """Current exact state mask of a boundary row (the scalar
        path's read primitive for ``_in_values``)."""
        raise NotImplementedError

    def materialize(self) -> Iterator[Tuple[int, List[DUGNode]]]:
        """Yield ``(final state mask, member merge nodes)`` for every
        SCC with a non-empty fixpoint state — one forward DP over the
        SCC DAG, run once after the worklist drains. Grouped by SCC
        (all members provably share one state) so the caller interns
        each mask once and shares the set across every member row."""
        assert not self._buf, "materialize before final flush"
        plan = self.plan
        inj = self._inj_total
        preds = plan.scc_preds
        succs = plan.scc_succs
        members = plan.scc_members
        # Sparse forward DP: only SCCs downstream of an injection can
        # have non-empty state, so walk just those — SCC ids are topo
        # ranks, so a min-heap over discovered ids visits every node
        # after all its (discovered) predecessors.
        full: Dict[int, int] = {}
        heap = sorted(inj)
        discovered = set(heap)
        while heap:
            s = heappop(heap)
            m = inj.get(s, 0)
            for p in preds[s]:
                fp = full.get(p)
                if fp:
                    m |= fp
            if not m:
                continue
            full[s] = m
            yield m, members[s]
            for t in succs[s]:
                if t not in discovered:
                    discovered.add(t)
                    heappush(heap, t)


class PythonKernel(_KernelState):
    """Pure-Python backend: one interpreter big-int per boundary row.

    Every sweep step is a single arbitrary-precision OR/AND-NOT over
    the full universe mask — the big-int *is* the batch across
    objects — and row lookups go through flat ``array('l')`` index
    tables from the plan.
    """

    name = "python"

    def __init__(self, plan: KernelPlan) -> None:
        super().__init__(plan)
        self._acc: List[int] = [0] * plan.n_boundary

    def _apply(self, scc: int, mask: int, deliver) -> None:
        acc = self._acc
        for b in self.plan.reach(scc):
            new = mask & ~acc[b]
            if new:
                acc[b] |= new
                self.updates += 1
                deliver(b, new)

    def boundary_mask(self, boundary_id: int) -> int:
        return self._acc[boundary_id]


class NumpyKernel(_KernelState):
    """Numpy backend: boundary accumulators as a uint64 word matrix.

    A flush gathers each coalesced delta into a word vector and runs
    the compare-union over all reachable rows as a few vectorized
    ops; only rows whose words changed convert back to ints for
    delivery, so the interning table and the scalar worklist are
    touched once per changed mask.
    """

    name = "numpy"

    def __init__(self, plan: KernelPlan, universe_bits: int) -> None:
        super().__init__(plan)
        assert _np is not None
        # The universe can grow mid-solve (field derivation registers
        # objects on first sight), so start with headroom and widen on
        # demand in _ensure_bits.
        self._words = max(1, (universe_bits + 64 + 63) // 64)
        self._acc = _np.zeros((plan.n_boundary, self._words),
                              dtype="<u8")
        # Python-int mirror of every row, kept exactly in sync with
        # the matrix. Reads (boundary_mask, the tiny-reach path) come
        # from here for free; the matrix serves the vectorized sweeps.
        self._acc_int: List[int] = [0] * plan.n_boundary
        self._reach_np: Dict[int, object] = {}

    def _ensure_bits(self, bits: int) -> None:
        if bits <= self._words * 64:
            return
        words = (bits + 63) // 64 + 1
        wider = _np.zeros((self.plan.n_boundary, words), dtype="<u8")
        wider[:, :self._words] = self._acc
        self._acc = wider
        self._words = words

    def _rows_of(self, scc: int):
        rows = self._reach_np.get(scc)
        if rows is None:
            rows = self._reach_np[scc] = _np.asarray(
                self.plan.reach(scc), dtype=_np.intp)
        return rows

    def _apply(self, scc: int, mask: int, deliver) -> None:
        rows = self._rows_of(scc)
        n = len(rows)
        if not n:
            return
        self._ensure_bits(mask.bit_length())
        words = self._words
        acc = self._acc
        acc_int = self._acc_int
        if n <= 2:
            # Tiny reach set (thin chains are common): the fixed cost
            # of the vectorized path — buffer round-trips, fancy
            # indexing, reductions — exceeds a couple of big-int ops.
            for b in rows:
                b = int(b)
                cur = acc_int[b]
                new = mask & ~cur
                if new:
                    self.updates += 1
                    merged = cur | new
                    acc_int[b] = merged
                    acc[b] = _np.frombuffer(
                        merged.to_bytes(words * 8, "little"),
                        dtype="<u8")
                    deliver(b, new)
            return
        delta = _np.frombuffer(mask.to_bytes(words * 8, "little"),
                               dtype="<u8")
        gathered = acc[rows]
        new = delta & ~gathered
        changed = new.any(axis=1)
        if not changed.any():
            return
        acc[rows] = gathered | new
        for k in _np.flatnonzero(changed):
            self.updates += 1
            row = int(rows[k])
            bits = int.from_bytes(new[k].tobytes(), "little")
            acc_int[row] |= bits
            deliver(row, bits)

    def boundary_mask(self, boundary_id: int) -> int:
        return self._acc_int[boundary_id]


def make_kernel(backend: str, plan: KernelPlan,
                universe_bits: int) -> _KernelState:
    if backend == "numpy":
        return NumpyKernel(plan, universe_bits)
    if backend == "python":
        return PythonKernel(plan)
    raise ValueError(f"unknown kernel backend {backend!r}")
