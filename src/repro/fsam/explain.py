"""Points-to provenance: *why* does this load see this object?

Two complementary mechanisms live here:

1. **Recorded provenance** (preferred, needs ``FSAMConfig(trace=True)``):
   the sparse solver logs, for every fact, the rule/node/trigger that
   first introduced it (:mod:`repro.trace`). :func:`derivation_chain`
   walks those trigger links from any fact down to its root — an
   ``AddrOf`` for ordinary values — and :func:`explain_fact` renders
   the chain for a named variable, annotating steps that travelled a
   [THREAD-VF] edge with the MHP/lock verdict that admitted the edge.
   This is the ``repro explain <program> <var>`` surface.

2. **Post-hoc search** (:func:`explain_load`): a backwards BFS over
   the def-use graph following only edges whose source state carries
   the queried object. Works on untraced results, but reconstructs a
   plausible chain rather than reporting the recorded one.

For Figure 1(a), asking why ``c = *p`` sees ``z`` yields the
``*p = r`` store; asking why it sees ``y`` yields the thread-aware
edge from ``*p = q`` in the other thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.fsam.analysis import FSAMResult
from repro.ir.instructions import Load, Store
from repro.ir.values import MemObject, Temp
from repro.memssa.dug import DUGNode, StmtNode
from repro.trace import Derivation


@dataclass
class ProvenanceStep:
    node: DUGNode
    obj: MemObject
    thread_aware: bool

    def describe(self) -> str:
        marker = "  [thread-aware edge]" if self.thread_aware else ""
        line = ""
        if isinstance(self.node, StmtNode) and self.node.instr.line:
            line = f" (line {self.node.instr.line})"
        return f"{self.node!r}{line} defines {self.obj.name}{marker}"


@dataclass
class Provenance:
    """A def-use chain from the introducing store to the querying load."""

    load: Load
    target: MemObject
    steps: List[ProvenanceStep]

    def describe(self) -> str:
        lines = [f"why does {self.load!r} (line {self.load.line}) "
                 f"read {self.target.name}?"]
        for i, step in enumerate(reversed(self.steps)):
            lines.append("  " * (i + 1) + "-> " + step.describe())
        return "\n".join(lines)


def explain_load(result: FSAMResult, load: Load, target: MemObject) -> Optional[Provenance]:
    """The shortest def-use chain explaining ``target in pt(load.dst)``.

    Returns None when the fact does not hold (nothing to explain).
    """
    if target not in result.pts(load.dst):
        return None
    dug = result.dug
    solver = result.solver
    node = dug.stmt_node(load)

    # BFS backwards over o-labelled edges whose source carries the
    # value; stop at the store whose *stored value* includes target.
    start_edges = _carrying_in_edges(result, node, target)
    parents: Dict[int, Tuple[DUGNode, MemObject, DUGNode]] = {}
    queue: List[Tuple[DUGNode, MemObject]] = []
    for obj, src in start_edges:
        parents.setdefault(src.uid, (node, obj, src))
        queue.append((src, obj))
    seen: Set[int] = {node.uid} | {src.uid for _obj, src in start_edges}

    introducer: Optional[DUGNode] = None
    while queue:
        current, obj = queue.pop(0)
        if _introduces(result, current, obj, target):
            introducer = current
            break
        for obj2, src in _carrying_in_edges(result, current, target, label=obj):
            if src.uid in seen:
                continue
            seen.add(src.uid)
            parents[src.uid] = (current, obj2, src)
            queue.append((src, obj2))
    if introducer is None:
        return None

    # Reconstruct the chain introducer -> ... -> load.
    steps: List[ProvenanceStep] = []
    walk: Optional[DUGNode] = introducer
    while walk is not None and walk.uid in parents:
        consumer, obj, src = parents[walk.uid]
        steps.append(ProvenanceStep(
            node=src, obj=obj,
            thread_aware=dug.is_thread_edge(src, obj, consumer)))
        walk = consumer if consumer.uid in parents else None
        if consumer is node:
            break
    return Provenance(load=load, target=target, steps=steps)


def _carrying_in_edges(result: FSAMResult, node: DUGNode, target: MemObject,
                       label: Optional[MemObject] = None):
    """In-edges of *node* whose source state contains *target*."""
    edges = []
    for obj, sources in result.dug.mem_in(node).items():
        if label is not None and obj is not label:
            continue
        for src in sources:
            if target in result.solver.mem_state(src, obj):
                edges.append((obj, src))
    return edges


def _introduces(result: FSAMResult, node: DUGNode, obj: MemObject,
                target: MemObject) -> bool:
    """Does *node* originate the value (a store whose stored operand
    points to target)?"""
    if not isinstance(node, StmtNode) or not isinstance(node.instr, Store):
        return False
    return target in result.solver.value_pts(node.instr.value)


# -- recorded-provenance chains (repro.trace) -------------------------------

#: Display tags mapping internal rule names to the paper's rules.
RULE_TAGS = {
    "addr": "P-ADDR",
    "copy": "P-COPY",
    "phi": "P-PHI",
    "gep": "P-GEP",
    "load": "P-LOAD",
    "store-strong": "P-SU",
    "store-weak": "P-WU",
    "store-through": "P-WU pass-through",
    "mem-phi": "MEM-PHI",
    "formal-in": "FORMAL-IN",
    "formal-out": "FORMAL-OUT",
    "call-mu": "CALL-MU",
    "call-chi": "CALL-CHI",
    "fork-handle": "FORK",
}


def _object_by_id(result: FSAMResult, obj_id: int) -> Optional[MemObject]:
    universe = result.solver.universe
    index = universe._indices.get(obj_id)
    return universe.object_at(index) if index is not None else None


def _temps_by_id(result: FSAMResult) -> Dict[int, Temp]:
    temps: Dict[int, Temp] = {}
    for fn in result.module.functions.values():
        for param in fn.params:
            temps[param.id] = param
        for instr in fn.instructions():
            dst = getattr(instr, "dst", None)
            if isinstance(dst, Temp):
                temps[dst.id] = dst
    return temps


def derivation_chain(result: FSAMResult, key: Tuple,
                     limit: int = 128) -> List[Tuple[Tuple, Derivation]]:
    """The recorded derivation chain from fact *key* to its root.

    Follows first-introduction trigger links, so the walk terminates
    (a fact's trigger always predates it); *limit* is a belt-and-
    braces bound. Raises :class:`ValueError` when the result carries
    no provenance (run with ``FSAMConfig(trace=True)``)."""
    provenance = result.provenance
    if provenance is None:
        raise ValueError("no provenance recorded: re-run the analysis "
                         "with FSAMConfig(trace=True)")
    chain: List[Tuple[Tuple, Derivation]] = []
    seen: Set[Tuple] = set()
    while key is not None and key not in seen and len(chain) < limit:
        seen.add(key)
        derivation = provenance.get(key)
        if derivation is None:
            break
        chain.append((key, derivation))
        key = derivation.trigger
    return chain


def _describe_fact(result: FSAMResult, key: Tuple,
                   temps: Dict[int, Temp],
                   nodes: Dict[int, DUGNode]) -> str:
    obj = _object_by_id(result, key[-1])
    obj_name = obj.name if obj is not None else f"obj#{key[-1]}"
    if key[0] == "top":
        temp = temps.get(key[1])
        var = repr(temp) if temp is not None else f"%t{key[1]}"
        return f"{obj_name} in pt({var})"
    container = _object_by_id(result, key[2])
    container_name = container.name if container is not None else f"obj#{key[2]}"
    node = nodes.get(key[1])
    return f"{obj_name} in state({container_name}) at {node!r}"


def _describe_derivation(result: FSAMResult, key: Tuple, d: Derivation,
                         temps: Dict[int, Temp],
                         nodes: Dict[int, DUGNode]) -> List[str]:
    tag = RULE_TAGS.get(d.rule, d.rule)
    location = ""
    if isinstance(d.origin, StmtNode) and d.origin.instr.line:
        location = f" (line {d.origin.instr.line})"
    head = f"{_describe_fact(result, key, temps, nodes)}" \
           f"   [{tag}]{location}"
    if d.is_root:
        head += "  <- root"
    lines = [head]
    if d.thread_edge and d.edge is not None:
        src_uid, container_id, _dst_uid = d.edge
        source = nodes.get(src_uid)
        container = _object_by_id(result, container_id)
        container_name = container.name if container is not None \
            else f"obj#{container_id}"
        source_line = ""
        if isinstance(source, StmtNode) and source.instr.line:
            source_line = f" (line {source.instr.line})"
        lines.append(f"    via [THREAD-VF] edge {source!r}{source_line} "
                     f"--{container_name}--> this load")
        verdict = result.dug.thread_edge_verdict(*d.edge)
        if verdict is not None:
            lines.append(f"    admitted: MHP {verdict.get('mhp', '?')}; "
                         f"{verdict.get('lock', '?')}")
    return lines


def render_derivation(result: FSAMResult, key: Tuple) -> str:
    """A human-readable derivation chain for fact *key*, from the
    queried fact down to its root."""
    temps = _temps_by_id(result)
    nodes = {n.uid: n for n in result.dug.nodes}
    chain = derivation_chain(result, key)
    if not chain:
        return f"no recorded derivation for {key!r}"
    out = [f"why {_describe_fact(result, key, temps, nodes)}?"]
    for i, (fact_key, derivation) in enumerate(chain):
        prefix = "  " if i == 0 else "  <- "
        described = _describe_derivation(result, fact_key, derivation,
                                         temps, nodes)
        out.append(prefix + described[0])
        out.extend("  " + extra for extra in described[1:])
    return "\n".join(out)


def explain_fact(result: FSAMResult, name: str,
                 obj_name: Optional[str] = None) -> List[str]:
    """Rendered derivation chains for variable *name*.

    *name* may be a global (its memory states are explained, one chain
    per pointed-to object, anchored at the first store that introduced
    the fact) or a top-level temp name. ``obj_name`` restricts the
    explanation to one pointed-to object."""
    provenance = result.provenance
    if provenance is None:
        raise ValueError("no provenance recorded: re-run the analysis "
                         "with FSAMConfig(trace=True)")
    temps = _temps_by_id(result)
    keys: List[Tuple] = []
    module = result.module
    if name in module.globals:
        container = module.globals[name]
        first_per_obj: Set[int] = set()
        for key in provenance:
            if key[0] == "mem" and key[2] == container.id \
                    and key[3] not in first_per_obj:
                first_per_obj.add(key[3])
                keys.append(key)
    matching_temp_ids = {tid for tid, t in temps.items() if t.name == name}
    if matching_temp_ids:
        for key in provenance:
            if key[0] == "top" and key[1] in matching_temp_ids:
                keys.append(key)
    out: List[str] = []
    for key in keys:
        obj = _object_by_id(result, key[-1])
        if obj_name is not None and (obj is None or obj.name != obj_name):
            continue
        out.append(render_derivation(result, key))
    return out


def explain_at_line(result: FSAMResult, line: int,
                    target_name: str) -> List[Provenance]:
    """Explain every load at *line* whose pt() contains an object named
    *target_name*."""
    out: List[Provenance] = []
    for instr in result.module.all_instructions():
        if isinstance(instr, Load) and instr.line == line:
            for obj in result.pts(instr.dst):
                if obj.name == target_name:
                    prov = explain_load(result, instr, obj)
                    if prov is not None:
                        out.append(prov)
    return out
