"""Points-to provenance: *why* does this load see this object?

Walks the def-use graph backwards from a load, following only edges
whose source state actually carries the queried object, until the
store that introduced the value. The resulting chain is the sparse
analysis' own reasoning — for Figure 1(a), asking why ``c = *p`` sees
``z`` yields the ``*p = r`` store; asking why it sees ``y`` yields
the thread-aware edge from ``*p = q`` in the other thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.fsam.analysis import FSAMResult
from repro.ir.instructions import Load, Store
from repro.ir.values import MemObject, Temp
from repro.memssa.dug import DUGNode, StmtNode


@dataclass
class ProvenanceStep:
    node: DUGNode
    obj: MemObject
    thread_aware: bool

    def describe(self) -> str:
        marker = "  [thread-aware edge]" if self.thread_aware else ""
        line = ""
        if isinstance(self.node, StmtNode) and self.node.instr.line:
            line = f" (line {self.node.instr.line})"
        return f"{self.node!r}{line} defines {self.obj.name}{marker}"


@dataclass
class Provenance:
    """A def-use chain from the introducing store to the querying load."""

    load: Load
    target: MemObject
    steps: List[ProvenanceStep]

    def describe(self) -> str:
        lines = [f"why does {self.load!r} (line {self.load.line}) "
                 f"read {self.target.name}?"]
        for i, step in enumerate(reversed(self.steps)):
            lines.append("  " * (i + 1) + "-> " + step.describe())
        return "\n".join(lines)


def explain_load(result: FSAMResult, load: Load, target: MemObject) -> Optional[Provenance]:
    """The shortest def-use chain explaining ``target in pt(load.dst)``.

    Returns None when the fact does not hold (nothing to explain).
    """
    if target not in result.pts(load.dst):
        return None
    dug = result.dug
    solver = result.solver
    node = dug.stmt_node(load)

    # BFS backwards over o-labelled edges whose source carries the
    # value; stop at the store whose *stored value* includes target.
    start_edges = _carrying_in_edges(result, node, target)
    parents: Dict[int, Tuple[DUGNode, MemObject, DUGNode]] = {}
    queue: List[Tuple[DUGNode, MemObject]] = []
    for obj, src in start_edges:
        parents.setdefault(src.uid, (node, obj, src))
        queue.append((src, obj))
    seen: Set[int] = {node.uid} | {src.uid for _obj, src in start_edges}

    introducer: Optional[DUGNode] = None
    while queue:
        current, obj = queue.pop(0)
        if _introduces(result, current, obj, target):
            introducer = current
            break
        for obj2, src in _carrying_in_edges(result, current, target, label=obj):
            if src.uid in seen:
                continue
            seen.add(src.uid)
            parents[src.uid] = (current, obj2, src)
            queue.append((src, obj2))
    if introducer is None:
        return None

    # Reconstruct the chain introducer -> ... -> load.
    steps: List[ProvenanceStep] = []
    walk: Optional[DUGNode] = introducer
    while walk is not None and walk.uid in parents:
        consumer, obj, src = parents[walk.uid]
        steps.append(ProvenanceStep(
            node=src, obj=obj,
            thread_aware=dug.is_thread_edge(src, obj, consumer)))
        walk = consumer if consumer.uid in parents else None
        if consumer is node:
            break
    return Provenance(load=load, target=target, steps=steps)


def _carrying_in_edges(result: FSAMResult, node: DUGNode, target: MemObject,
                       label: Optional[MemObject] = None):
    """In-edges of *node* whose source state contains *target*."""
    edges = []
    for obj, sources in result.dug.mem_in(node).items():
        if label is not None and obj is not label:
            continue
        for src in sources:
            if target in result.solver.mem_state(src, obj):
                edges.append((obj, src))
    return edges


def _introduces(result: FSAMResult, node: DUGNode, obj: MemObject,
                target: MemObject) -> bool:
    """Does *node* originate the value (a store whose stored operand
    points to target)?"""
    if not isinstance(node, StmtNode) or not isinstance(node.instr, Store):
        return False
    return target in result.solver.value_pts(node.instr.value)


def explain_at_line(result: FSAMResult, line: int,
                    target_name: str) -> List[Provenance]:
    """Explain every load at *line* whose pt() contains an object named
    *target_name*."""
    out: List[Provenance] = []
    for instr in result.module.all_instructions():
        if isinstance(instr, Load) and instr.line == line:
            for obj in result.pts(instr.dst):
                if obj.name == target_name:
                    prov = explain_load(result, instr, obj)
                    if prov is not None:
                        out.append(prov)
    return out
