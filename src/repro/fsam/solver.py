"""The sparse flow-sensitive points-to solver (paper Figure 10).

Propagates points-to facts only along the DUG's pre-computed def-use
edges:

- top-level SSA variables get one global points-to set each — SSA
  form makes this flow-sensitive by construction;
- address-taken objects get one points-to set per defining DUG node
  (stores, chi/phi/formal pseudo-statements), connected by the
  o-labelled edges.

Rule correspondence:

- [P-ADDR]/[P-COPY]/[P-PHI] — direct top-level updates.
- [P-LOAD]   — a load reads the o-states reaching it for each o in
  the (sparse) points-to set of its pointer.
- [P-STORE]  — a store writes its value's points-to set into each o
  it may target.
- [P-SU/WU]  — a strong update (incoming state killed) happens when
  the pointer resolves to exactly one singleton object; otherwise the
  old state merges in (weak). Objects the store cannot target pass
  through unchanged; a store through a null/empty pointer kills
  everything (kill = A).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set, Tuple

from repro.andersen import AndersenResult
from repro.andersen.fields import derive_field
from repro.fsam.config import Deadline, FSAMConfig
from repro.ir.instructions import (
    AddrOf, Call, Copy, Fork, Gep, Join, Load, Phi, Store,
)
from repro.ir.module import Module
from repro.ir.values import Constant, Function, MemObject, Temp, Value
from repro.memssa.builder import MemorySSABuilder
from repro.memssa.dug import (
    CallChiNode, CallMuNode, DUG, DUGNode, FormalInNode, FormalOutNode,
    MemPhiNode, StmtNode,
)
from repro.obs import Observer
from repro.pts import PTSet, PTUniverse


class SparseSolver:
    """Worklist solver over the DUG.

    All per-variable (``pts_top``) and per-definition (``mem``) state
    is held as interned :class:`~repro.pts.PTSet` bitmasks over the
    pre-analysis universe, so the delta checks in ``_set_top`` /
    ``_set_mem`` are O(1) subset tests on masks and unchanged unions
    return the existing instance.
    """

    def __init__(self, module: Module, dug: DUG, builder: MemorySSABuilder,
                 andersen: AndersenResult, config: Optional[FSAMConfig] = None,
                 deadline: Optional[Deadline] = None) -> None:
        self.module = module
        self.dug = dug
        self.builder = builder
        self.andersen = andersen
        self.universe: PTUniverse = andersen.universe
        self.config = config or FSAMConfig()
        self.deadline = deadline
        self.pts_top: Dict[int, PTSet] = {}
        self.mem: Dict[Tuple[int, int], PTSet] = {}
        self._work: deque = deque()
        self._queued: Set[int] = set()
        self.iterations = 0
        self.strong_updates = 0
        self.weak_updates = 0

    # -- state access ----------------------------------------------------

    def top(self, temp: Temp) -> PTSet:
        return self.pts_top.get(temp.id, self.universe.empty)

    def value_pts(self, value: Optional[Value]) -> PTSet:
        """Points-to set of any value operand."""
        if value is None or isinstance(value, Constant):
            return self.universe.empty
        if isinstance(value, Function):
            return self.universe.singleton(value.mem_object)
        if isinstance(value, Temp):
            return self.pts_top.get(value.id, self.universe.empty)
        return self.universe.empty

    def mem_state(self, node: DUGNode, obj: MemObject) -> PTSet:
        """The o-state defined at *node*."""
        return self.mem.get((node.uid, obj.id), self.universe.empty)

    def _in_values(self, node: DUGNode, obj: MemObject) -> PTSet:
        empty = self.universe.empty
        result = empty
        for src in self.dug.mem_defs_of(node, obj):
            result = result | self.mem.get((src.uid, obj.id), empty)
        return result

    # -- state updates ------------------------------------------------------

    def _push(self, node: DUGNode) -> None:
        if node.uid not in self._queued:
            self._queued.add(node.uid)
            self._work.append(node)

    def _set_top(self, temp: Temp, values: PTSet) -> None:
        empty = self.universe.empty
        pending = [(temp, values)]
        while pending:
            target, vals = pending.pop()
            current = self.pts_top.get(target.id, empty)
            merged = current | vals
            if merged is current:  # vals ⊆ current: O(1) mask subset test
                continue
            self.pts_top[target.id] = merged
            for user in self.dug.top_users(target):
                self._push(user)
            for src, dst in self.dug.copies_from(target):
                pending.append((dst, self.value_pts(src)))

    def _set_mem(self, node: DUGNode, obj: MemObject, values: PTSet) -> None:
        key = (node.uid, obj.id)
        current = self.mem.get(key, self.universe.empty)
        merged = current | values
        if merged is current:
            return
        self.mem[key] = merged
        for out_obj, dst in self.dug.mem_out(node):
            # Compare by object id: field-derived MemObjects can in
            # principle be equal-but-distinct instances, and an
            # identity miss here silently drops o-edge propagation.
            if out_obj.id == obj.id:
                self._push(dst)

    # -- solving ---------------------------------------------------------------

    def solve(self) -> None:
        # Interprocedural top-level copies whose sources are constants
        # or function values never re-trigger; evaluate them up front.
        for src, dst in self.dug.top_copies:
            self._set_top(dst, self.value_pts(src))
        for node in self.dug.nodes:
            self._push(node)
        while self._work:
            if self.deadline is not None and self.iterations % 256 == 0:
                self.deadline.check()
            self.iterations += 1
            node = self._work.popleft()
            self._queued.discard(node.uid)
            self._eval(node)

    def _eval(self, node: DUGNode) -> None:
        if isinstance(node, StmtNode):
            self._eval_stmt(node)
        elif isinstance(node, (MemPhiNode, FormalInNode, FormalOutNode, CallMuNode)):
            obj = node.obj
            self._set_mem(node, obj, self._in_values(node, obj))
        elif isinstance(node, CallChiNode):
            self._eval_call_chi(node)

    def _eval_call_chi(self, node: CallChiNode) -> None:
        obj = node.obj
        values = self._in_values(node, obj)
        site = node.site
        if isinstance(site, Fork) and site.handle_ptr is not None:
            # The fork's write of the abstract thread id into the
            # handle slot happens at this chi.
            if obj in self.value_pts(site.handle_ptr):
                tid = self.andersen.thread_objects.get(site.id)
                if tid is not None:
                    values = values | self.universe.singleton(tid)
        self._set_mem(node, obj, values)

    def _eval_stmt(self, node: StmtNode) -> None:
        instr = node.instr
        if isinstance(instr, AddrOf):
            self._set_top(instr.dst, {instr.obj})
        elif isinstance(instr, Copy):
            self._set_top(instr.dst, self.value_pts(instr.src))
        elif isinstance(instr, Phi):
            merged = self.universe.empty
            for value, _block in instr.incomings:
                merged = merged | self.value_pts(value)
            self._set_top(instr.dst, merged)
        elif isinstance(instr, Gep):
            derived = self.universe.make(
                derive_field(obj, instr.field_index)
                for obj in self.value_pts(instr.base))
            self._set_top(instr.dst, derived)
        elif isinstance(instr, Load):
            empty = self.universe.empty
            objs = self.value_pts(instr.ptr)
            values = empty
            for obj in objs & self.builder.mus.get(instr.id, empty):
                values = values | self._in_values(node, obj)
            # [THREAD-VF] edges are followed unconditionally, as the
            # paper's sparse analysis does: a spurious edge (e.g. with
            # the AS(*p,*q) premise disregarded in the No-Value-Flow
            # ablation) both costs propagation work and pollutes pt()
            # — exactly the Figure 1(e) effect.
            for obj, src in self.dug.thread_in_edges(node):
                values = values | self.mem.get((src.uid, obj.id), empty)
            self._set_top(instr.dst, values)
        elif isinstance(instr, Store):
            self._eval_store(node, instr)
        # Call / Fork / Join: top-level linking flows through
        # dug.top_copies; memory effects flow through mu/chi nodes.

    def _eval_store(self, node: StmtNode, instr: Store) -> None:
        targets = self.value_pts(instr.ptr)
        stored = self.value_pts(instr.value)
        for obj in self.builder.chis.get(instr.id, self.universe.empty):
            if not targets:
                # kill(s, p) = A for an empty pointer: the store goes
                # nowhere known; nothing propagates (paper Figure 10).
                continue
            if obj not in targets:
                # Pass-through: the store cannot touch obj.
                self._set_mem(node, obj, self._in_values(node, obj))
                continue
            strong = len(targets) == 1 and obj.is_singleton
            if strong and not self.config.strong_updates_at_interfering_stores:
                strong = not self.dug.is_interfering(node, obj)
            if strong:
                self.strong_updates += 1
                self._set_mem(node, obj, stored)
            else:
                self.weak_updates += 1
                self._set_mem(node, obj, stored | self._in_values(node, obj))

    # -- metrics ------------------------------------------------------------

    def points_to_entries(self) -> int:
        """A memory-consumption proxy: the total number of (program
        point, variable) -> target facts the solver materialised.

        Counted as bitmask popcounts over the interned sets, so the
        number matches the pre-interning ``Set[MemObject]`` counting
        and Table 2 stays comparable (the *storage* is shared, the
        *fact count* is not deduplicated).
        """
        total = sum(len(s) for s in self.pts_top.values())
        total += sum(len(s) for s in self.mem.values())
        return total

    def flush_obs(self, obs: Observer) -> None:
        obs.count("solver.iterations", self.iterations)
        # Strong/weak tallies count store *evaluations*, so re-visits
        # of the same store under new facts count again — a measure of
        # work done, not of distinct update sites.
        obs.count("solver.strong_updates", self.strong_updates)
        obs.count("solver.weak_updates", self.weak_updates)
        obs.count("solver.node_revisits",
                  max(0, self.iterations - len(self.dug.nodes)))
        obs.gauge("solver.dug_nodes", len(self.dug.nodes))
        obs.gauge("solver.points_to_entries", self.points_to_entries())
        ustats = self.universe.stats()
        obs.count("pts.set_references", int(ustats["set_references"]))
        obs.count("pts.union_cache_hits", int(ustats["union_cache_hits"]))
        obs.count("pts.intersect_cache_hits",
                  int(ustats["intersect_cache_hits"]))
        obs.gauge("pts.distinct_sets", int(ustats["distinct_sets"]))
        obs.gauge("pts.objects", int(ustats["objects"]))
        obs.gauge("pts.dedup_ratio", round(float(ustats["dedup_ratio"]), 3))
