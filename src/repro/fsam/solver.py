"""The sparse flow-sensitive points-to solver (paper Figure 10).

Propagates points-to facts only along the DUG's pre-computed def-use
edges:

- top-level SSA variables get one global points-to set each — SSA
  form makes this flow-sensitive by construction;
- address-taken objects get one points-to set per defining DUG node
  (stores, chi/phi/formal pseudo-statements), connected by the
  o-labelled edges.

Rule correspondence:

- [P-ADDR]/[P-COPY]/[P-PHI] — direct top-level updates.
- [P-LOAD]   — a load reads the o-states reaching it for each o in
  the (sparse) points-to set of its pointer.
- [P-STORE]  — a store writes its value's points-to set into each o
  it may target.
- [P-SU/WU]  — a strong update (incoming state killed) happens when
  the pointer resolves to exactly one singleton object; otherwise the
  old state merges in (weak). Objects the store cannot target pass
  through unchanged; a store through a null/empty pointer kills
  everything (kill = A).

Engine
------

The engine is *delta-propagating* with *SCC-condensed topological
scheduling* (the same wave-propagation discipline as the Andersen
pre-analysis):

- **Delta propagation.** When ``_set_mem`` grows a node's o-state,
  only the **new bits** travel: they are folded into a pending-delta
  mask on each outgoing o-edge and the successor is enqueued. A
  re-evaluated merge node (memory phi, formal-in/out, call-mu, weak
  store, load) folds its pending deltas instead of re-unioning every
  predecessor state from scratch; ``_in_values`` survives only for
  first reads (a load discovering a new pointed-to container, a store
  reclassifying after its pointer grew) and for provenance/debug
  paths. Dropping a delta is always safe where the rules kill it
  (strong updates, empty-pointer stores, loads whose pointer does not
  reach the object): predecessor states are monotone and persistent,
  so a later classification change re-reads the full state.
- **Topological worklist.** ``DUG.compute_topo_ranks`` condenses the
  value-flow graph (o-edges + top-level def-use + copy chains, after
  ``[THREAD-VF]`` insertion) into its SCC DAG once; the worklist is an
  indexed priority queue on the resulting ranks, so facts flow
  downstream before any node is revisited. Only nodes with initial
  facts are seeded (AddrOf statements, function-valued copies/phis,
  fork-handle chis); everything else is reached by propagation.

Both changes preserve the exact fixpoint: transfer functions are
union-monotone, so visit order and per-visit cost change but the
least fixpoint does not (differentially pinned against
:class:`~repro.fsam.reference.ReferenceSolver`).

When constructed with an enabled :class:`~repro.trace.Tracer`, the
solver additionally records **derivation provenance**: for every
``(variable, object)`` and ``(memory state, object)`` fact, the rule,
node, and trigger fact that *first* introduced it. With the default
:data:`~repro.trace.NULL_TRACER` the hot paths pay only a
``provenance is None`` check per state change.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, Tuple

from repro.andersen import AndersenResult
from repro.andersen.fields import derive_field
from repro.fsam.config import Deadline, FSAMConfig
from repro.ir.instructions import (
    AddrOf, Call, Copy, Fork, Gep, Join, Load, Phi, Store,
)
from repro.ir.module import Module
from repro.ir.values import Constant, Function, MemObject, Temp, Value
from repro.memssa.builder import MemorySSABuilder
from repro.memssa.dug import (
    CallChiNode, CallMuNode, DUG, DUGNode, FormalInNode, FormalOutNode,
    MemPhiNode, StmtNode,
)
from repro.obs import Observer
from repro.pts import PTSet, PTUniverse
from repro.trace import Derivation, NULL_TRACER, Tracer, mem_fact, top_fact

# Store classifications (per store x chi-annotated object); see
# _eval_store. "kill" = empty pointer (nothing propagates), "pass" =
# object not targeted (state flows through), "strong"/"weak" = paper
# [P-SU]/[P-WU].
KILL, PASS, STRONG, WEAK = "kill", "pass", "strong", "weak"


class SparseSolver:
    """Delta-propagating worklist solver over the DUG.

    All per-variable (``pts_top``) and per-definition (``mem``) state
    is held as interned :class:`~repro.pts.PTSet` bitmasks over the
    pre-analysis universe, so the delta checks in ``_set_top`` /
    ``_set_mem`` are O(1) subset tests on masks, unchanged unions
    return the existing instance, and the per-edge deltas are plain
    int masks (``merged & ~current``).
    """

    def __init__(self, module: Module, dug: DUG, builder: MemorySSABuilder,
                 andersen: AndersenResult, config: Optional[FSAMConfig] = None,
                 deadline: Optional[Deadline] = None,
                 tracer: Tracer = NULL_TRACER) -> None:
        self.module = module
        self.dug = dug
        self.builder = builder
        self.andersen = andersen
        self.universe: PTUniverse = andersen.universe
        self.config = config or FSAMConfig()
        self.deadline = deadline
        self.tracer = tracer
        # Fact key -> Derivation; None when tracing is off so the hot
        # path's guard is a single identity test.
        self.provenance: Optional[Dict[Tuple, Derivation]] = \
            {} if tracer.enabled else None
        self.pts_top: Dict[int, PTSet] = {}
        self.mem: Dict[Tuple[int, int], PTSet] = {}
        # Indexed priority worklist: a heap of (rank, uid) plus the
        # membership set that makes pushes idempotent.
        self._work: List[Tuple[int, int]] = []
        self._queued: Set[int] = set()
        self._rank: Dict[int, int] = {}
        self._node_by_uid: Dict[int, DUGNode] = {}
        # Nodes whose top-level operands changed since their last
        # visit (pushed via top_users); deltas alone leave this unset.
        self._top_dirty: Set[int] = set()
        # Pending o-state deltas per destination node:
        # uid -> obj.id -> [MemObject, delta mask]. ``_pending_thread``
        # is the separate channel for thread-aware edges into loads,
        # which fold unconditionally ([THREAD-VF] is not filtered by
        # the load's pointer).
        self._pending: Dict[int, Dict[int, List]] = {}
        self._pending_thread: Dict[int, Dict[int, List]] = {}
        # Per-node out-edge cache grouped by flowing object:
        # uid -> obj.id -> [(obj, dst, thread_to_load)]. Grouping by
        # object id (the stable allocation-site id, not id(obj):
        # field-derived MemObjects can be equal-but-distinct
        # instances) means ``_set_mem`` touches only the edges that
        # actually carry the grown object.
        self._out_edges: Dict[
            int, Dict[int, List[Tuple[MemObject, DUGNode, bool]]]] = {}
        # Loads: object ids whose full incoming state was already
        # merged (subsequent growth arrives as deltas).
        self._load_seen: Dict[int, Set[int]] = {}
        # Stores: current classification per chi object, refreshed on
        # every pointer/value change (top-dirty visit).
        self._store_class: Dict[int, Dict[int, str]] = {}
        self._visited: Set[int] = set()
        self.iterations = 0
        self.strong_updates = 0
        self.weak_updates = 0
        self.delta_propagations = 0
        self.seeded_nodes = 0
        self.scc_count = 0

    # -- state access ----------------------------------------------------

    def top(self, temp: Temp) -> PTSet:
        return self.pts_top.get(temp.id, self.universe.empty)

    def value_pts(self, value: Optional[Value]) -> PTSet:
        """Points-to set of any value operand."""
        if value is None or isinstance(value, Constant):
            return self.universe.empty
        if isinstance(value, Function):
            return self.universe.singleton(value.mem_object)
        if isinstance(value, Temp):
            return self.pts_top.get(value.id, self.universe.empty)
        return self.universe.empty

    def mem_state(self, node: DUGNode, obj: MemObject) -> PTSet:
        """The o-state defined at *node*."""
        return self.mem.get((node.uid, obj.id), self.universe.empty)

    def _in_values(self, node: DUGNode, obj: MemObject) -> PTSet:
        """Recompute the full incoming o-state — first reads and
        provenance/debug only; steady-state propagation uses deltas."""
        empty = self.universe.empty
        result = empty
        for src in self.dug.mem_defs_of(node, obj):
            result = result | self.mem.get((src.uid, obj.id), empty)
        return result

    # -- worklist ---------------------------------------------------------

    def _push(self, node: DUGNode) -> None:
        uid = node.uid
        if uid not in self._queued:
            self._queued.add(uid)
            heappush(self._work, (self._rank.get(uid, 0), uid))

    def _push_top(self, node: DUGNode) -> None:
        self._top_dirty.add(node.uid)
        self._push(node)

    # -- state updates ------------------------------------------------------

    def _set_top(self, temp: Temp, values, prov=None) -> None:
        tracing = self.provenance is not None
        if not self._apply_top(temp, values, prov, tracing):
            return
        # Interprocedural copy-chain expansion with a deduped pending
        # set: on diamond-shaped copy graphs the same destination is
        # visited once per round (recomputing its merge over *all* its
        # sources) instead of once per path.
        pending: List[Temp] = []
        pending_ids: Set[int] = set()

        def enqueue_dsts(t: Temp) -> None:
            for _src, dst in self.dug.copies_from(t):
                if dst.id not in pending_ids:
                    pending_ids.add(dst.id)
                    pending.append(dst)

        enqueue_dsts(temp)
        empty = self.universe.empty
        while pending:
            dst = pending.pop()
            pending_ids.discard(dst.id)
            current = self.pts_top.get(dst.id, empty)
            merged = current
            for src, _dst in self.dug.copies_into(dst):
                sv = self.value_pts(src)
                nm = merged | sv
                if nm is not merged:
                    if tracing:
                        self._record_top(dst, merged, sv, ("copy-chain", src))
                    merged = nm
            if merged is current:
                continue
            self.pts_top[dst.id] = merged
            for user in self.dug.top_users(dst):
                self._push_top(user)
            enqueue_dsts(dst)

    def _apply_top(self, target: Temp, vals, prov, tracing: bool) -> bool:
        current = self.pts_top.get(target.id, self.universe.empty)
        merged = current | vals
        if merged is current:  # vals ⊆ current: O(1) mask subset test
            return False
        if tracing:
            self._record_top(target, current, vals, prov)
        self.pts_top[target.id] = merged
        for user in self.dug.top_users(target):
            self._push_top(user)
        return True

    def _set_mem(self, node: DUGNode, obj: MemObject, values: PTSet,
                 prov=None) -> None:
        key = (node.uid, obj.id)
        current = self.mem.get(key, self.universe.empty)
        merged = current | values
        if merged is current:
            return
        if self.provenance is not None:
            self._record_mem(node, obj, current, values, prov)
        self.mem[key] = merged
        delta = merged.mask & ~current.mask
        obj_id = obj.id
        by_obj = self._out_edges.get(node.uid)
        if by_obj is None:
            return
        for out_obj, dst, thread_to_load in by_obj.get(obj_id, ()):
            self.delta_propagations += 1
            book = self._pending_thread if thread_to_load else self._pending
            slot = book.setdefault(dst.uid, {})
            entry = slot.get(obj_id)
            if entry is None:
                slot[obj_id] = [out_obj, delta]
            else:
                entry[1] |= delta
            self._push(dst)

    # -- solving ---------------------------------------------------------------

    def _prepare_schedule(self) -> None:
        """SCC-condense the value-flow graph into topological ranks
        and cache per-node out-edges with their delta channel."""
        self._rank, self.scc_count = self.dug.compute_topo_ranks()
        dug = self.dug
        node_by_uid = self._node_by_uid
        out_edges = self._out_edges
        # Thread-aware edges into loads take the unconditional delta
        # channel; flag them from the (small) thread-edge list rather
        # than querying is_thread_edge once per o-edge.
        to_load = set()
        for src, obj, dst in dug.thread_edges:
            if isinstance(dst, StmtNode) and isinstance(dst.instr, Load):
                to_load.add((src.uid, obj.id, dst.uid))
        for node in dug.nodes:
            uid = node.uid
            node_by_uid[uid] = node
            out = dug.mem_out(node)
            if not out:
                continue
            by_obj: Dict[int, List[Tuple[MemObject, DUGNode, bool]]] = {}
            for obj, dst in out:
                by_obj.setdefault(obj.id, []).append(
                    (obj, dst,
                     bool(to_load) and (uid, obj.id, dst.uid) in to_load))
            out_edges[uid] = by_obj

    def _seed(self) -> None:
        """Enqueue only the nodes that can produce facts from nothing:
        AddrOf statements, copies/phis of function values, and
        fork-handle chis (their thread-id write needs no incoming
        state once the handle pointer resolves)."""
        for node in self.dug.nodes:
            if isinstance(node, StmtNode):
                instr = node.instr
                seed = (isinstance(instr, AddrOf)
                        or (isinstance(instr, Copy)
                            and isinstance(instr.src, Function))
                        or (isinstance(instr, Phi)
                            and any(isinstance(v, Function)
                                    for v, _b in instr.incomings)))
            else:
                seed = (isinstance(node, CallChiNode)
                        and isinstance(node.site, Fork)
                        and node.site.handle_ptr is not None)
            if seed:
                self.seeded_nodes += 1
                self._push_top(node)

    def solve(self) -> None:
        self._prepare_schedule()
        tracing = self.provenance is not None
        # Interprocedural top-level copies whose sources are constants
        # or function values never re-trigger; evaluate them up front.
        for src, dst in self.dug.top_copies:
            self._set_top(dst, self.value_pts(src),
                          ("copy-chain", src) if tracing else None)
        self._seed()
        work = self._work
        queued = self._queued
        node_by_uid = self._node_by_uid
        visited = self._visited
        while work:
            if self.deadline is not None and self.iterations % 256 == 0:
                self.deadline.check()
            self.iterations += 1
            _rank, uid = heappop(work)
            queued.discard(uid)
            visited.add(uid)
            self._eval(node_by_uid[uid])

    _MERGE_RULES = {
        MemPhiNode: "mem-phi",
        FormalInNode: "formal-in",
        FormalOutNode: "formal-out",
        CallMuNode: "call-mu",
    }

    def _eval(self, node: DUGNode) -> None:
        uid = node.uid
        dirty = uid in self._top_dirty
        if dirty:
            self._top_dirty.discard(uid)
        pend = self._pending.pop(uid, None)
        if isinstance(node, StmtNode):
            instr = node.instr
            if isinstance(instr, Load):
                self._eval_load(node, instr, dirty, pend)
            elif isinstance(instr, Store):
                self._eval_store(node, instr, dirty, pend)
            elif dirty:
                self._eval_top_stmt(node, instr)
        elif isinstance(node, CallChiNode):
            self._eval_call_chi(node, dirty, pend)
        elif pend:
            # Merge pseudo-statements (memory phi, formal-in/out,
            # call-mu): the state is the union of everything that ever
            # arrived, so folding the pending delta is the whole
            # transfer — no _in_values rescan.
            obj = node.obj
            entry = pend.get(obj.id)
            if entry is not None and entry[1]:
                prov = None
                if self.provenance is not None:
                    prov = (self._MERGE_RULES[type(node)], node)
                self._set_mem(node, obj,
                              self.universe.from_mask(entry[1]), prov)

    def _eval_call_chi(self, node: CallChiNode, dirty: bool,
                       pend: Optional[Dict[int, List]]) -> None:
        obj = node.obj
        mask = 0
        if pend is not None:
            entry = pend.get(obj.id)
            if entry is not None:
                mask = entry[1]
        if dirty:
            site = node.site
            if isinstance(site, Fork) and site.handle_ptr is not None:
                # The fork's write of the abstract thread id into the
                # handle slot happens at this chi; the chi is a
                # top-level user of the handle pointer, so it re-runs
                # whenever pt(handle) grows.
                if obj in self.value_pts(site.handle_ptr):
                    tid = self.andersen.thread_objects.get(site.id)
                    if tid is not None:
                        mask |= self.universe.singleton(tid).mask
        if mask:
            prov = ("call-chi", node) if self.provenance is not None else None
            self._set_mem(node, obj, self.universe.from_mask(mask), prov)

    def _eval_top_stmt(self, node: StmtNode, instr) -> None:
        tracing = self.provenance is not None
        if isinstance(instr, AddrOf):
            self._set_top(instr.dst, {instr.obj},
                          ("addr", node) if tracing else None)
        elif isinstance(instr, Copy):
            self._set_top(instr.dst, self.value_pts(instr.src),
                          ("copy", node) if tracing else None)
        elif isinstance(instr, Phi):
            merged = self.universe.empty
            for value, _block in instr.incomings:
                merged = merged | self.value_pts(value)
            self._set_top(instr.dst, merged,
                          ("phi", node) if tracing else None)
        elif isinstance(instr, Gep):
            derived = self.universe.make(
                derive_field(obj, instr.field_index)
                for obj in self.value_pts(instr.base))
            self._set_top(instr.dst, derived,
                          ("gep", node) if tracing else None)
        # Call / Fork / Join: top-level linking flows through
        # dug.top_copies; memory effects flow through mu/chi nodes.

    def _eval_load(self, node: StmtNode, instr: Load, dirty: bool,
                   pend: Optional[Dict[int, List]]) -> None:
        uid = node.uid
        tpend = self._pending_thread.pop(uid, None)
        mask = 0
        seen = self._load_seen.get(uid)
        if dirty:
            # The pointer (or mus) view changed: fully read any
            # newly-reachable container once; afterwards its growth
            # arrives as deltas.
            empty = self.universe.empty
            containers = self.value_pts(instr.ptr) & \
                self.builder.mus.get(instr.id, empty)
            if containers:
                if seen is None:
                    seen = self._load_seen[uid] = set()
                for obj in containers:
                    if obj.id in seen:
                        continue
                    seen.add(obj.id)
                    mask |= self._in_values(node, obj).mask
        if pend and seen:
            for obj_id, entry in pend.items():
                if obj_id in seen:
                    mask |= entry[1]
        if tpend:
            # [THREAD-VF] edges are followed unconditionally, as the
            # paper's sparse analysis does: a spurious edge (e.g. with
            # the AS(*p,*q) premise disregarded in the No-Value-Flow
            # ablation) both costs propagation work and pollutes pt()
            # — exactly the Figure 1(e) effect.
            for entry in tpend.values():
                mask |= entry[1]
        if mask:
            tracing = self.provenance is not None
            self._set_top(instr.dst, self.universe.from_mask(mask),
                          ("load", node) if tracing else None)

    def _eval_store(self, node: StmtNode, instr: Store, dirty: bool,
                    pend: Optional[Dict[int, List]]) -> None:
        uid = node.uid
        tracing = self.provenance is not None
        if dirty:
            # Pointer or stored value changed: reclassify every chi
            # object against the new pt(ptr). The full _in_values
            # reads below subsume any pending deltas (predecessor
            # states are updated before deltas are enqueued), and
            # deltas into strong/kill-classified objects are dropped
            # by the rules themselves.
            targets = self.value_pts(instr.ptr)
            stored = self.value_pts(instr.value)
            classes = self._store_class.get(uid)
            if classes is None:
                classes = self._store_class[uid] = {}
            for obj in self.builder.chis.get(instr.id, self.universe.empty):
                if not targets:
                    # kill(s, p) = A for an empty pointer: the store
                    # goes nowhere known; nothing propagates (paper
                    # Figure 10).
                    classes[obj.id] = KILL
                    continue
                if obj not in targets:
                    # Pass-through: the store cannot touch obj.
                    classes[obj.id] = PASS
                    self._set_mem(node, obj, self._in_values(node, obj),
                                  ("store-through", node) if tracing else None)
                    continue
                strong = len(targets) == 1 and obj.is_singleton
                if strong and \
                        not self.config.strong_updates_at_interfering_stores:
                    strong = not self.dug.is_interfering(node, obj)
                if strong:
                    classes[obj.id] = STRONG
                    self.strong_updates += 1
                    self._set_mem(node, obj, stored,
                                  ("store-strong", node) if tracing else None)
                else:
                    classes[obj.id] = WEAK
                    self.weak_updates += 1
                    self._set_mem(node, obj, stored | self._in_values(node, obj),
                                  ("store-weak", node) if tracing else None)
            return
        if not pend:
            return
        classes = self._store_class.get(uid)
        if classes is None:
            # Never visited top-dirty: pt(ptr) is still empty, so
            # every object is killed (nothing propagates).
            return
        from_mask = self.universe.from_mask
        for obj_id, entry in pend.items():
            cls = classes.get(obj_id)
            if cls is PASS:
                self._set_mem(node, entry[0], from_mask(entry[1]),
                              ("store-through", node) if tracing else None)
            elif cls is WEAK:
                self.weak_updates += 1
                self._set_mem(node, entry[0], from_mask(entry[1]),
                              ("store-weak", node) if tracing else None)
            # STRONG / KILL: the incoming delta is killed by the rule.

    # -- derivation provenance ----------------------------------------------
    #
    # Only reached when tracing is on. For every object newly added to
    # a points-to state, record the Derivation that first introduced
    # the fact ("first-introduction semantics": later re-derivations
    # of the same fact are not recorded, so walking trigger links
    # always terminates at roots). Triggers are found by re-scanning
    # the solver state, which already holds the facts the transfer
    # read: predecessor states are updated before their deltas are
    # delivered.

    def _record_top(self, target: Temp, current: PTSet, vals,
                    prov: Optional[Tuple]) -> None:
        rule, origin = prov if prov is not None else ("seed", None)
        assert self.provenance is not None
        for obj in vals:
            if obj in current:
                continue
            key = top_fact(target.id, obj.id)
            if key in self.provenance:
                continue
            derivation = self._derive_top(rule, origin, obj)
            self.provenance[key] = derivation
            self._emit_derive(key, derivation, f"pt(%{target.name})", obj)

    def _derive_top(self, rule: str, origin, obj: MemObject) -> Derivation:
        if rule == "addr":
            return Derivation("addr", origin, None)
        if rule == "copy-chain":
            # origin is the *source value* of an interprocedural copy.
            if isinstance(origin, Temp) and obj in self.value_pts(origin):
                return Derivation("copy", origin, top_fact(origin.id, obj.id))
            return Derivation("copy", origin, None)  # function/constant root
        if rule == "copy":
            src = origin.instr.src
            if isinstance(src, Temp) and obj in self.value_pts(src):
                return Derivation("copy", origin, top_fact(src.id, obj.id))
            return Derivation("copy", origin, None)
        if rule == "phi":
            for value, _block in origin.instr.incomings:
                if isinstance(value, Temp) and obj in self.value_pts(value):
                    return Derivation("phi", origin,
                                      top_fact(value.id, obj.id))
            return Derivation("phi", origin, None)
        if rule == "gep":
            base = origin.instr.base
            if isinstance(base, Temp):
                for base_obj in self.value_pts(base):
                    derived = derive_field(base_obj, origin.instr.field_index)
                    if derived.id == obj.id:
                        return Derivation("gep", origin,
                                          top_fact(base.id, base_obj.id))
            return Derivation("gep", origin, None)
        if rule == "load":
            return self._derive_load(origin, obj)
        return Derivation(rule, origin, None)

    def _derive_load(self, node: StmtNode, obj: MemObject) -> Derivation:
        """Which incoming memory state handed *obj* to this load —
        checking the sparse (sequential) in-edges first, then the
        [THREAD-VF] edges, so a fact only explicable through thread
        interference is attributed to its thread-aware edge."""
        empty = self.universe.empty
        instr = node.instr
        containers = self.value_pts(instr.ptr) & \
            self.builder.mus.get(instr.id, empty)
        for container in containers:
            for src in self.dug.mem_defs_of(node, container):
                # Thread-aware edges also live in _mem_in; defer them
                # to the second pass so they carry their annotation.
                if self.dug.is_thread_edge(src, container, node):
                    continue
                if obj in self.mem.get((src.uid, container.id), empty):
                    return Derivation(
                        "load", node,
                        mem_fact(src.uid, container.id, obj.id))
        for container, src in self.dug.thread_in_edges(node):
            if obj in self.mem.get((src.uid, container.id), empty):
                return Derivation(
                    "load", node,
                    mem_fact(src.uid, container.id, obj.id),
                    thread_edge=True,
                    edge=(src.uid, container.id, node.uid))
        return Derivation("load", node, None)

    def _record_mem(self, node: DUGNode, container: MemObject,
                    current: PTSet, vals, prov: Optional[Tuple]) -> None:
        rule, origin = prov if prov is not None else ("seed", node)
        assert self.provenance is not None
        for obj in vals:
            if obj in current:
                continue
            key = mem_fact(node.uid, container.id, obj.id)
            if key in self.provenance:
                continue
            derivation = self._derive_mem(rule, node, container, obj)
            self.provenance[key] = derivation
            self._emit_derive(key, derivation,
                              f"state({container.name})", obj)

    def _derive_mem(self, rule: str, node: DUGNode, container: MemObject,
                    obj: MemObject) -> Derivation:
        if rule in ("store-strong", "store-weak"):
            value = node.instr.value
            if isinstance(value, (Temp, Function)) and \
                    obj in self.value_pts(value):
                trigger = top_fact(value.id, obj.id) \
                    if isinstance(value, Temp) else None
                return Derivation(rule, node, trigger)
            # Weak update: the object survived from the incoming state.
        incoming = self._find_mem_trigger(node, container, obj)
        if incoming is not None:
            return Derivation(rule, node, incoming)
        if rule == "call-chi" and isinstance(node, CallChiNode) \
                and isinstance(node.site, Fork):
            # The abstract thread id written into the fork handle has
            # no def-use predecessor: it is a provenance root.
            return Derivation("fork-handle", node, None)
        return Derivation(rule, node, None)

    def _find_mem_trigger(self, node: DUGNode, container: MemObject,
                          obj: MemObject) -> Optional[Tuple]:
        empty = self.universe.empty
        for src in self.dug.mem_defs_of(node, container):
            if obj in self.mem.get((src.uid, container.id), empty):
                return mem_fact(src.uid, container.id, obj.id)
        return None

    def _emit_derive(self, key: Tuple, derivation: Derivation,
                     subject: str, obj: MemObject) -> None:
        origin = derivation.origin
        line = None
        if isinstance(origin, StmtNode) and origin.instr.line:
            line = origin.instr.line
        self.tracer.emit(
            "derive", kind=key[0], fact=list(key), subject=subject,
            obj=obj.name, obj_id=obj.id, rule=derivation.rule,
            origin=repr(origin) if origin is not None else None,
            line=line,
            trigger=list(derivation.trigger) if derivation.trigger else None,
            thread_edge=derivation.thread_edge)

    # -- metrics ------------------------------------------------------------

    def points_to_entries(self) -> int:
        """A memory-consumption proxy: the total number of (program
        point, variable) -> target facts the solver materialised.

        Counted as bitmask popcounts over the interned sets, so the
        number matches the pre-interning ``Set[MemObject]`` counting
        and Table 2 stays comparable (the *storage* is shared, the
        *fact count* is not deduplicated).
        """
        total = sum(len(s) for s in self.pts_top.values())
        total += sum(len(s) for s in self.mem.values())
        return total

    def flush_obs(self, obs: Observer) -> None:
        obs.count("solver.iterations", self.iterations)
        # Strong/weak tallies count store *evaluations* (full
        # reclassifications plus weak delta folds), so re-visits of
        # the same store under new facts count again — a measure of
        # work done, not of distinct update sites.
        obs.count("solver.strong_updates", self.strong_updates)
        obs.count("solver.weak_updates", self.weak_updates)
        obs.count("solver.node_revisits",
                  max(0, self.iterations - len(self._visited)))
        obs.count("solver.delta_propagations", self.delta_propagations)
        obs.count("solver.seeded_nodes", self.seeded_nodes)
        obs.gauge("solver.sccs", self.scc_count)
        obs.gauge("solver.dug_nodes", len(self.dug.nodes))
        obs.gauge("solver.points_to_entries", self.points_to_entries())
        if self.provenance is not None:
            obs.gauge("trace.provenance_facts", len(self.provenance))
        ustats = self.universe.stats()
        obs.count("pts.set_references", int(ustats["set_references"]))
        obs.count("pts.union_cache_hits", int(ustats["union_cache_hits"]))
        obs.count("pts.intersect_cache_hits",
                  int(ustats["intersect_cache_hits"]))
        obs.gauge("pts.distinct_sets", int(ustats["distinct_sets"]))
        obs.gauge("pts.objects", int(ustats["objects"]))
        obs.gauge("pts.dedup_ratio", round(float(ustats["dedup_ratio"]), 3))


def store_update_classes(solver) -> Dict[Tuple[int, int], str]:
    """Final strong/weak classification per (store instruction id,
    object id), derived from the solver's fixpoint state.

    Works for any engine exposing ``value_pts``/``builder``/``dug``/
    ``config`` (the production :class:`SparseSolver` and the
    :class:`~repro.fsam.reference.ReferenceSolver`), so differential
    tests can assert the engines agree on every [P-SU]/[P-WU]
    decision, not just on the points-to sets.
    """
    classes: Dict[Tuple[int, int], str] = {}
    builder = solver.builder
    config = solver.config
    dug = solver.dug
    for fn in solver.module.functions.values():
        for instr in fn.instructions():
            if not isinstance(instr, Store):
                continue
            targets = solver.value_pts(instr.ptr)
            node = dug.stmt_node(instr) if dug.has_stmt(instr) else None
            for obj in builder.chis.get(instr.id, ()):
                if not targets:
                    cls = KILL
                elif obj not in targets:
                    cls = PASS
                else:
                    strong = len(targets) == 1 and obj.is_singleton
                    if strong and node is not None and \
                            not config.strong_updates_at_interfering_stores:
                        strong = not dug.is_interfering(node, obj)
                    cls = STRONG if strong else WEAK
                classes[(instr.id, obj.id)] = cls
    return classes
