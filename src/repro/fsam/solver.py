"""The sparse flow-sensitive points-to solver (paper Figure 10).

Propagates points-to facts only along the DUG's pre-computed def-use
edges:

- top-level SSA variables get one global points-to set each — SSA
  form makes this flow-sensitive by construction;
- address-taken objects get one points-to set per defining DUG node
  (stores, chi/phi/formal pseudo-statements), connected by the
  o-labelled edges.

Rule correspondence:

- [P-ADDR]/[P-COPY]/[P-PHI] — direct top-level updates.
- [P-LOAD]   — a load reads the o-states reaching it for each o in
  the (sparse) points-to set of its pointer.
- [P-STORE]  — a store writes its value's points-to set into each o
  it may target.
- [P-SU/WU]  — a strong update (incoming state killed) happens when
  the pointer resolves to exactly one singleton object; otherwise the
  old state merges in (weak). Objects the store cannot target pass
  through unchanged; a store through a null/empty pointer kills
  everything (kill = A).

Engine
------

The engine is *delta-propagating* with *SCC-condensed topological
scheduling* (the same wave-propagation discipline as the Andersen
pre-analysis):

- **Delta propagation.** When ``_set_mem`` grows a node's o-state,
  only the **new bits** travel: they are folded into a pending-delta
  mask on each outgoing o-edge and the successor is enqueued. A
  re-evaluated merge node (memory phi, formal-in/out, call-mu, weak
  store, load) folds its pending deltas instead of re-unioning every
  predecessor state from scratch; ``_in_values`` survives only for
  first reads (a load discovering a new pointed-to container, a store
  reclassifying after its pointer grew) and for provenance/debug
  paths. Dropping a delta is always safe where the rules kill it
  (strong updates, empty-pointer stores, loads whose pointer does not
  reach the object): predecessor states are monotone and persistent,
  so a later classification change re-reads the full state.
- **Topological worklist.** ``DUG.compute_topo_ranks`` condenses the
  value-flow graph (o-edges + top-level def-use + copy chains, after
  ``[THREAD-VF]`` insertion) into its SCC DAG once; the worklist is an
  indexed priority queue on the resulting ranks, so facts flow
  downstream before any node is revisited. Only nodes with initial
  facts are seeded (AddrOf statements, function-valued copies/phis,
  fork-handle chis); everything else is reached by propagation.
- **Batched merge propagation** (``FSAMConfig.kernel``, see
  :mod:`repro.fsam.kernel`). Pure merge pseudo-statements — memory
  phis, formal-in/out, call-mus, non-fork call/join chis — are the
  large majority of visits and their transfer is a bare union, so
  they are lifted out of the worklist entirely: scalar transfers
  *inject* their deltas into the merge subgraph, a rank-gated *flush*
  sweeps coalesced deltas straight to the subgraph's boundary rows
  (the merge nodes feeding loads/stores/fork-chis), and interior
  states are materialized once after the fixpoint. Loads, stores and
  fork chis — everything whose transfer can reclassify — stay on the
  scalar path, as do whole runs when provenance tracing is on
  (counted in ``solver.kernel_fallbacks``).

Both changes preserve the exact fixpoint: transfer functions are
union-monotone, so visit order and per-visit cost change but the
least fixpoint does not (differentially pinned against
:class:`~repro.fsam.reference.ReferenceSolver`).

When constructed with an enabled :class:`~repro.trace.Tracer`, the
solver additionally records **derivation provenance**: for every
``(variable, object)`` and ``(memory state, object)`` fact, the rule,
node, and trigger fact that *first* introduced it. With the default
:data:`~repro.trace.NULL_TRACER` the hot paths pay only a
``provenance is None`` check per state change.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, Tuple

from repro.andersen import AndersenResult
from repro.andersen.fields import derive_field
from repro.fsam.config import Deadline, FSAMConfig
from repro.fsam.kernel import (
    AUTO_NUMPY_MIN_REACH, KernelPlan, backend_name, build_plan, make_kernel,
)
from repro.ir.instructions import (
    AddrOf, Call, Copy, Fork, Gep, Join, Load, Phi, Store,
)
from repro.ir.module import Module
from repro.ir.values import Function, MemObject, Temp, Value
from repro.memssa.builder import MemorySSABuilder
from repro.memssa.dug import (
    CallChiNode, CallMuNode, DUG, DUGNode, FormalInNode, FormalOutNode,
    MemPhiNode, StmtNode,
)
from repro.obs import Observer
from repro.pts import PTSet, PTUniverse
from repro.trace import Derivation, NULL_TRACER, Tracer, mem_fact, top_fact

# Store classifications (per store x chi-annotated object); see
# _eval_store. "kill" = empty pointer (nothing propagates), "pass" =
# object not targeted (state flows through), "strong"/"weak" = paper
# [P-SU]/[P-WU].
KILL, PASS, STRONG, WEAK = "kill", "pass", "strong", "weak"

# _eval dispatch tags, precomputed once per node in the schedule
# bundle: the hot loop dispatches on small-int compares instead of
# re-running isinstance chains on every visit. Tags >= TAG_ADDR are
# the top-level statement kinds (evaluated only when top-dirty).
(TAG_MERGE, TAG_LOAD, TAG_STORE, TAG_CHI,
 TAG_ADDR, TAG_COPY, TAG_PHI, TAG_GEP, TAG_TOP_OTHER) = range(9)


class IncrementalReuse:
    """A previous fixpoint's reusable share, for
    :meth:`SparseSolver.solve_incremental`.

    ``frozen_uids`` must be *predecessor-closed* in the combined
    value-flow graph (every in-edge of a frozen node comes from a
    frozen node, every operand temp of a frozen node is a frozen
    temp): the incremental layer guarantees this by freezing exactly
    the complement of :meth:`repro.memssa.dug.DUG.downstream_closure`
    of the changed region. ``top_masks`` holds the frozen temps'
    fixpoint masks (keyed by ``Temp.id`` of *this* run), ``mem_masks``
    the frozen nodes' per-object states (keyed by ``(uid, obj.id)`` of
    this run) — both already translated into this run's universe.
    """

    __slots__ = ("frozen_uids", "top_masks", "mem_masks")

    def __init__(self, frozen_uids: Set[int],
                 top_masks: Dict[int, int],
                 mem_masks: Dict[Tuple[int, int], int]) -> None:
        self.frozen_uids = frozen_uids
        self.top_masks = top_masks
        self.mem_masks = mem_masks


class SparseSolver:
    """Delta-propagating worklist solver over the DUG.

    All per-variable (``pts_top``) and per-definition (``mem``) state
    is held as interned :class:`~repro.pts.PTSet` bitmasks over the
    pre-analysis universe, so the delta checks in ``_set_top`` /
    ``_set_mem`` are O(1) subset tests on masks, unchanged unions
    return the existing instance, and the per-edge deltas are plain
    int masks (``merged & ~current``).
    """

    def __init__(self, module: Module, dug: DUG, builder: MemorySSABuilder,
                 andersen: AndersenResult, config: Optional[FSAMConfig] = None,
                 deadline: Optional[Deadline] = None,
                 tracer: Tracer = NULL_TRACER) -> None:
        self.module = module
        self.dug = dug
        # Direct handles on the DUG's adjacency dicts — the per-update
        # hot paths skip the getter-method indirection. A demand-driven
        # solve (solve_demand) swaps these for slice-filtered copies,
        # which is what confines propagation to the slice.
        self._top_users_map = dug._top_users
        self._copies_by_src = dug._copies_by_src
        self._top_copies = dug.top_copies
        self.builder = builder
        self.andersen = andersen
        self.universe: PTUniverse = andersen.universe
        self.config = config or FSAMConfig()
        self.deadline = deadline
        self.tracer = tracer
        # Fact key -> Derivation; None when tracing is off so the hot
        # path's guard is a single identity test.
        self.provenance: Optional[Dict[Tuple, Derivation]] = \
            {} if tracer.enabled else None
        # Public fixpoint views (interned PTSets), filled from the raw
        # mask state once at the end of solve(): the solve itself runs
        # entirely on plain int masks and touches the interning table
        # only for distinct final states.
        self.pts_top: Dict[int, PTSet] = {}
        self.mem: Dict[Tuple[int, int], PTSet] = {}
        self._top_masks: Dict[int, int] = {}
        self._mem_masks: Dict[Tuple[int, int], int] = {}
        # Priority worklist: a single int min-heap of packed
        # ``(rank << 32) | uid`` keys (ranks are mostly unique per
        # node, so per-rank buckets would churn). ``_queued`` keeps
        # pushes idempotent — at most one live heap entry per uid.
        self._heap: List[int] = []
        self._rank_key: Dict[int, int] = {}
        self._queued: Set[int] = set()
        self._rank: Dict[int, int] = {}
        # uid -> (node, dispatch tag); see the TAG_* constants.
        self._node_by_uid: Dict[int, Tuple[DUGNode, int]] = {}
        # Nodes whose top-level operands changed since their last
        # visit (pushed via top_users); deltas alone leave this unset.
        self._top_dirty: Set[int] = set()
        # Pending o-state deltas per destination node:
        # uid -> obj.id -> [MemObject, delta mask]. ``_pending_thread``
        # is the separate channel for thread-aware edges into loads,
        # which fold unconditionally ([THREAD-VF] is not filtered by
        # the load's pointer).
        self._pending: Dict[int, Dict[int, List]] = {}
        self._pending_thread: Dict[int, Dict[int, List]] = {}
        # Per-node out-edge cache grouped by flowing object:
        # uid -> obj.id -> [(obj, dst, thread_to_load)]. Grouping by
        # object id (the stable allocation-site id, not id(obj):
        # field-derived MemObjects can be equal-but-distinct
        # instances) means ``_set_mem`` touches only the edges that
        # actually carry the grown object.
        self._out_edges: Dict[
            int, Dict[int, List[Tuple[MemObject, DUGNode, bool]]]] = {}
        # Loads: object ids whose full incoming state was already
        # merged (subsequent growth arrives as deltas).
        self._load_seen: Dict[int, Set[int]] = {}
        # Geps: [last base mask, derived mask] per node, so a re-eval
        # only derives fields for base objects that are new since the
        # previous visit (pt(base) is monotone).
        self._gep_cache: Dict[int, List[int]] = {}
        self._seeds: List[DUGNode] = []
        # Stores: current classification per chi object, refreshed on
        # every pointer/value change (top-dirty visit).
        self._store_class: Dict[int, Dict[int, str]] = {}
        self._visited: Set[int] = set()
        # Batched merge-propagation kernel (repro.fsam.kernel); None
        # when disabled (kernel="none", tracing on, or no merge
        # nodes). _inj_targets routes scalar deltas into the merge
        # subgraph: uid -> obj.id -> [SCC ids].
        self._kern = None
        self._plan: Optional[KernelPlan] = None
        self._inj_targets: Dict[int, Dict[int, List[int]]] = {}
        # Incremental solves preload merge states, which the kernel's
        # empty-start accumulators cannot represent; they force the
        # scalar path (bit-identical, pinned differentially).
        self._force_scalar = False
        self._frozen_uids: Set[int] = frozenset()
        self.kernel_backend: Optional[str] = None
        self.kernel_fallbacks = 0
        self.iterations = 0
        self.strong_updates = 0
        self.weak_updates = 0
        self.delta_propagations = 0
        self.seeded_nodes = 0
        self.scc_count = 0

    # -- state access ----------------------------------------------------

    def top(self, temp: Temp) -> PTSet:
        return self.universe.from_mask(self._top_masks.get(temp.id, 0))

    def value_pts(self, value: Optional[Value]) -> PTSet:
        """Points-to set of any value operand."""
        return self.universe.from_mask(self._value_mask(value))

    def _value_mask(self, value: Optional[Value]) -> int:
        """Raw-mask twin of :meth:`value_pts` — the solve-time hot
        path, no interning-table touch."""
        if type(value) is Temp:  # by far the hottest case
            return self._top_masks.get(value.id, 0)
        if isinstance(value, Function):
            return self.universe.singleton(value.mem_object).mask
        return 0

    def mem_state(self, node: DUGNode, obj: MemObject) -> PTSet:
        """The o-state defined at *node*."""
        return self.mem.get((node.uid, obj.id), self.universe.empty)

    def _in_mask(self, node: DUGNode, obj: MemObject) -> int:
        """Recompute the full incoming o-state as a raw mask — first
        reads and classification changes only; steady-state
        propagation uses deltas. With the kernel on, merge-node
        predecessors keep their live state in the kernel's boundary
        accumulators (every merge node feeding a scalar node is a
        boundary row by construction), so read it from there; their
        ``self.mem`` entries only exist after materialization."""
        mask = 0
        mem_masks = self._mem_masks
        obj_id = obj.id
        kern = self._kern
        if kern is None:
            for src in self.dug.mem_defs_of(node, obj):
                state = mem_masks.get((src.uid, obj_id))
                if state is not None:
                    mask |= state
            return mask
        brow_of = self._plan.brow_of_uid
        for src in self.dug.mem_defs_of(node, obj):
            brow = brow_of.get(src.uid)
            if brow is not None:
                mask |= kern.boundary_mask(brow)
            else:
                state = mem_masks.get((src.uid, obj_id))
                if state is not None:
                    mask |= state
        return mask

    def _in_values(self, node: DUGNode, obj: MemObject) -> PTSet:
        return self.universe.from_mask(self._in_mask(node, obj))

    # -- worklist ---------------------------------------------------------

    def _push(self, node: DUGNode) -> None:
        uid = node.uid
        queued = self._queued
        if uid not in queued:
            queued.add(uid)
            heappush(self._heap, self._rank_key[uid])

    def _push_top(self, node: DUGNode) -> None:
        self._top_dirty.add(node.uid)
        self._push(node)

    # -- state updates ------------------------------------------------------

    def _set_top(self, temp: Temp, vals_mask: int, prov=None) -> None:
        tracing = self.provenance is not None
        if not self._apply_top(temp, vals_mask, prov, tracing):
            return
        copies = self._copies_by_src.get(temp.id)
        if not copies:
            return  # hot exit: most temps feed no interprocedural copy
        # Interprocedural copy-chain expansion with a deduped pending
        # set: on diamond-shaped copy graphs the same destination is
        # visited once per round (recomputing its merge over *all* its
        # sources) instead of once per path.
        pending: List[Temp] = []
        pending_ids: Set[int] = set()
        for _src, dst in copies:
            if dst.id not in pending_ids:
                pending_ids.add(dst.id)
                pending.append(dst)
        masks = self._top_masks
        while pending:
            dst = pending.pop()
            pending_ids.discard(dst.id)
            current = masks.get(dst.id, 0)
            merged = current
            for src, _dst in self.dug.copies_into(dst):
                sv = self._value_mask(src)
                nm = merged | sv
                if nm != merged:
                    if tracing:
                        self._record_top(dst, merged, sv, ("copy-chain", src))
                    merged = nm
            if merged == current:
                continue
            masks[dst.id] = merged
            for user in self._top_users_map.get(dst.id, ()):
                self._push_top(user)
            for _src, nxt in self._copies_by_src.get(dst.id, ()):
                if nxt.id not in pending_ids:
                    pending_ids.add(nxt.id)
                    pending.append(nxt)

    def _apply_top(self, target: Temp, vals_mask: int, prov,
                   tracing: bool) -> bool:
        masks = self._top_masks
        tid = target.id
        current = masks.get(tid, 0)
        merged = current | vals_mask
        if merged == current:  # vals ⊆ current
            return False
        if tracing:
            self._record_top(target, current, vals_mask, prov)
        masks[tid] = merged
        users = self._top_users_map.get(tid)
        if users:
            # _push_top inlined: this is the single hottest push site.
            top_dirty = self._top_dirty
            queued = self._queued
            rank_key = self._rank_key
            heap = self._heap
            for user in users:
                uid = user.uid
                top_dirty.add(uid)
                if uid not in queued:
                    queued.add(uid)
                    heappush(heap, rank_key[uid])
        return True

    def _set_mem(self, node: DUGNode, obj: MemObject, vals_mask: int,
                 prov=None) -> None:
        key = (node.uid, obj.id)
        masks = self._mem_masks
        current = masks.get(key, 0)
        merged = current | vals_mask
        if merged == current:
            return
        if self.provenance is not None:
            self._record_mem(node, obj, current, vals_mask, prov)
        masks[key] = merged
        delta = merged & ~current
        obj_id = obj.id
        inj_by_obj = self._inj_targets.get(node.uid)
        if inj_by_obj is not None:
            sccs = inj_by_obj.get(obj_id)
            if sccs:
                kern = self._kern
                for scc in sccs:
                    self.delta_propagations += 1
                    kern.inject(scc, delta)
        by_obj = self._out_edges.get(node.uid)
        if by_obj is None:
            return
        for out_obj, dst, thread_to_load in by_obj.get(obj_id, ()):
            self.delta_propagations += 1
            book = self._pending_thread if thread_to_load else self._pending
            slot = book.setdefault(dst.uid, {})
            entry = slot.get(obj_id)
            if entry is None:
                slot[obj_id] = [out_obj, delta]
            else:
                entry[1] |= delta
            self._push(dst)

    # -- solving ---------------------------------------------------------------

    # Pseudo-statements whose whole transfer is a per-object union —
    # batchable by the kernel. Call chis qualify only when their site
    # is not a Fork: fork chis also write the abstract thread id into
    # the handle slot on top-dirty visits.
    _MERGE_TYPES = (MemPhiNode, FormalInNode, FormalOutNode, CallMuNode)

    def _is_kernel_merge(self, node: DUGNode) -> bool:
        if isinstance(node, self._MERGE_TYPES):
            return True
        return isinstance(node, CallChiNode) and \
            not isinstance(node.site, Fork)

    _TOP_TAGS = {AddrOf: TAG_ADDR, Copy: TAG_COPY, Phi: TAG_PHI,
                 Gep: TAG_GEP}

    @classmethod
    def _node_tag(cls, node: DUGNode) -> int:
        if isinstance(node, StmtNode):
            instr = node.instr
            if isinstance(instr, Load):
                return TAG_LOAD
            if isinstance(instr, Store):
                return TAG_STORE
            return cls._TOP_TAGS.get(type(instr), TAG_TOP_OTHER)
        if isinstance(node, CallChiNode):
            return TAG_CHI
        return TAG_MERGE

    def _build_schedule(self, kernel: bool) -> Dict[str, object]:
        """Materialise the solver's static per-graph structures: the
        node index, the seed list, and the per-node out-edge caches —
        split, when *kernel* is set, into scalar delta channels and
        merge-subgraph injection targets around the kernel plan.

        Everything here is a pure function of the frozen DUG, so the
        result is memoized in ``dug.schedule_cache`` and shared by
        every solver constructed on the graph; nothing in the bundle
        is mutated during a solve.
        """
        dug = self.dug
        node_by_uid: Dict[int, Tuple[DUGNode, int]] = {}
        out_edges: Dict[
            int, Dict[int, List[Tuple[MemObject, DUGNode, bool]]]] = {}
        inj_targets: Dict[int, Dict[int, List[int]]] = {}
        seeds: List[DUGNode] = []
        # Thread-aware edges into loads take the unconditional delta
        # channel; flag them from the (small) thread-edge list rather
        # than querying is_thread_edge once per o-edge.
        to_load = set()
        for src, obj, dst in dug.thread_edges:
            if isinstance(dst, StmtNode) and isinstance(dst.instr, Load):
                to_load.add((src.uid, obj.id, dst.uid))
        plan = None
        kernel_unavailable = None
        if kernel:
            merge_nodes = [node for node in dug.nodes
                           if self._is_kernel_merge(node)]
            if merge_nodes:
                try:
                    plan = build_plan(dug, merge_nodes, self._rank, to_load)
                except ValueError:
                    # A mixed-object merge edge would let one object's
                    # delta leak into another's chain; no builder
                    # produces one, but fall back to the scalar path
                    # rather than crash.
                    kernel_unavailable = "mixed-object"
            else:
                kernel_unavailable = "no-merge-nodes"
        scc_of_uid = plan.scc_of_uid if plan is not None else {}
        for node in dug.nodes:
            uid = node.uid
            node_by_uid[uid] = (node, self._node_tag(node))
            if self._is_seed(node):
                seeds.append(node)
            if uid in scc_of_uid:
                # In the kernel: edges live in the plan (internal or
                # boundary); the node never enters the worklist.
                continue
            out = dug.mem_out(node)
            if not out:
                continue
            by_obj: Dict[int, List[Tuple[MemObject, DUGNode, bool]]] = {}
            inj_by_obj: Dict[int, List[int]] = {}
            for obj, dst in out:
                scc = scc_of_uid.get(dst.uid)
                if scc is not None:
                    # A delta whose object differs from the merge
                    # node's own is dropped by the scalar merge
                    # transfer too (pend lookup misses); skip it.
                    if obj.id == dst.obj.id:
                        sccs = inj_by_obj.setdefault(obj.id, [])
                        if scc not in sccs:
                            sccs.append(scc)
                    continue
                by_obj.setdefault(obj.id, []).append(
                    (obj, dst,
                     bool(to_load) and (uid, obj.id, dst.uid) in to_load))
            if by_obj:
                out_edges[uid] = by_obj
            if inj_by_obj:
                inj_targets[uid] = inj_by_obj
        rank = self._rank
        rank_key = {uid: (rank.get(uid, 0) << 32) | uid
                    for uid in node_by_uid}
        return {
            "node_by_uid": node_by_uid,
            "out_edges": out_edges,
            "inj_targets": inj_targets,
            "seeds": seeds,
            "plan": plan,
            "kernel_unavailable": kernel_unavailable,
            "rank_key": rank_key,
        }

    def _schedule_bundle(self, kernel: bool) -> Dict[str, object]:
        key = "solver_schedule:kernel" if kernel else "solver_schedule:scalar"
        cached = self.dug.schedule_cache.get(key)
        if cached is None:
            cached = self._build_schedule(kernel)
            self.dug.schedule_cache[key] = cached
        return cached

    def _prepare_schedule(self) -> None:
        """SCC-condense the value-flow graph into topological ranks,
        build (or reuse) the per-graph schedule bundle, and stand up
        the kernel backend for this solve."""
        self._rank, self.scc_count = self.dug.compute_topo_ranks()
        backend = backend_name(self.config.kernel)
        if backend is not None and self._force_scalar:
            backend = None
        if backend is not None and self.provenance is not None:
            # Provenance records the first-introduction trigger of
            # every fact at every visit; the kernel skips interior
            # merge visits entirely, so tracing forces the scalar
            # path.
            self.kernel_fallbacks = 1
            backend = None
        sched = self._schedule_bundle(backend is not None)
        if backend is not None and sched["plan"] is None:
            if sched["kernel_unavailable"] == "mixed-object":
                self.kernel_fallbacks = 1
            sched = self._schedule_bundle(False)
            backend = None
        self._node_by_uid = sched["node_by_uid"]
        self._out_edges = sched["out_edges"]
        self._inj_targets = sched["inj_targets"]
        self._seeds = sched["seeds"]
        if backend is not None:
            self._plan = sched["plan"]
            if backend == "numpy" and self.config.kernel == "auto" and \
                    self._plan.max_reach < AUTO_NUMPY_MIN_REACH:
                # Thin merge chains: one injection reaches a handful of
                # rows at most, so the vectorized sweep's fixed costs
                # never amortise — big-int accumulators win.
                backend = "python"
            self._kern = make_kernel(backend, self._plan, len(self.universe))
            self.kernel_backend = backend
        self._rank_key = sched["rank_key"]
        self._heap = []

    # -- demand-driven slice schedules --------------------------------------

    def _demand_static(self) -> Dict[str, object]:
        """Whole-graph structures every demand-driven slice schedule
        filters from: the (node, tag) index over all uids, the seed
        and kernel-merge uid sets, and the thread-edge-into-load keys
        indexed by destination uid. Pure functions of the frozen DUG,
        memoized in ``dug.schedule_cache`` and shared across queries —
        each query then pays only slice-proportional filtering on top
        (membership probes per slice uid, never a whole-list scan)."""
        dug = self.dug
        cached = dug.schedule_cache.get("solver_demand_static")
        if cached is None:
            node_by_uid: Dict[int, Tuple[DUGNode, int]] = {}
            seeds: List[DUGNode] = []
            merges: List[DUGNode] = []
            for node in dug.nodes:
                node_by_uid[node.uid] = (node, self._node_tag(node))
                if self._is_seed(node):
                    seeds.append(node)
                if self._is_kernel_merge(node):
                    merges.append(node)
            to_load_by_dst: Dict[int, List[Tuple[int, int, int]]] = {}
            for src, obj, dst in dug.thread_edges:
                if isinstance(dst, StmtNode) and isinstance(dst.instr, Load):
                    to_load_by_dst.setdefault(dst.uid, []).append(
                        (src.uid, obj.id, dst.uid))
            cached = {"node_by_uid": node_by_uid,
                      "seed_uids": {n.uid for n in seeds},
                      "merge_uids": {n.uid for n in merges},
                      "to_load_by_dst": to_load_by_dst}
            dug.schedule_cache["solver_demand_static"] = cached
        return cached

    def _build_demand_schedule(self, node_uids: Set[int],
                               temp_ids: Set[int],
                               kernel: bool) -> Dict[str, object]:
        """:meth:`_build_schedule` restricted to an upstream-closure
        slice. The node index, seeds, out-edge caches, kernel plan,
        and — crucially — the top-level def-use and copy maps cover
        slice members only: swapping the filtered maps under the hot
        paths (``_apply_top``, the copy-chain walk, the up-front
        ``top_copies`` sweep) is what stops propagation at the slice
        boundary without touching the engine itself."""
        dug = self.dug
        static = self._demand_static()
        full_index = static["node_by_uid"]
        # Ascending uid is creation order (uids are a creation
        # counter), so these reproduce the whole-program pass's
        # creation-ordered seed/merge lists while touching only the
        # slice — never the full node list.
        order = sorted(node_uids)
        node_by_uid = {uid: full_index[uid] for uid in order}
        seed_uids = static["seed_uids"]
        seeds = [full_index[uid][0] for uid in order if uid in seed_uids]
        to_load_by_dst = static["to_load_by_dst"]
        to_load = set()
        for uid in order:
            keys = to_load_by_dst.get(uid)
            if keys:
                to_load.update(keys)
        plan = None
        kernel_unavailable = None
        if kernel:
            merge_uids = static["merge_uids"]
            merge_nodes = [full_index[uid][0] for uid in order
                           if uid in merge_uids]
            if merge_nodes:
                try:
                    plan = build_plan(dug, merge_nodes, self._rank, to_load,
                                      keep_uids=node_uids)
                except ValueError:
                    kernel_unavailable = "mixed-object"
            else:
                kernel_unavailable = "no-merge-nodes"
        scc_of_uid = plan.scc_of_uid if plan is not None else {}
        out_edges: Dict[
            int, Dict[int, List[Tuple[MemObject, DUGNode, bool]]]] = {}
        inj_targets: Dict[int, Dict[int, List[int]]] = {}
        mem_out = dug._mem_out
        for uid in node_uids:
            if uid in scc_of_uid:
                continue
            out = mem_out.get(uid)
            if not out:
                continue
            by_obj: Dict[int, List[Tuple[MemObject, DUGNode, bool]]] = {}
            inj_by_obj: Dict[int, List[int]] = {}
            for obj, dst in out:
                if dst.uid not in node_uids:
                    continue  # outside the slice: provably unread
                scc = scc_of_uid.get(dst.uid)
                if scc is not None:
                    if obj.id == dst.obj.id:
                        sccs = inj_by_obj.setdefault(obj.id, [])
                        if scc not in sccs:
                            sccs.append(scc)
                    continue
                by_obj.setdefault(obj.id, []).append(
                    (obj, dst,
                     bool(to_load) and (uid, obj.id, dst.uid) in to_load))
            if by_obj:
                out_edges[uid] = by_obj
            if inj_by_obj:
                inj_targets[uid] = inj_by_obj
        rank = self._rank
        rank_key = {uid: (rank.get(uid, 0) << 32) | uid
                    for uid in node_by_uid}
        full_users = dug._top_users
        top_users: Dict[int, List[DUGNode]] = {}
        full_copies = dug._copies_by_src
        copies_by_src: Dict[int, List[Tuple[object, Temp]]] = {}
        top_copies: List[Tuple[object, Temp]] = []
        for tid in temp_ids:
            users = full_users.get(tid)
            if users:
                kept_users = [u for u in users if u.uid in node_uids]
                if kept_users:
                    top_users[tid] = kept_users
            pairs = full_copies.get(tid)
            if pairs:
                kept_pairs = [p for p in pairs if p[1].id in temp_ids]
                if kept_pairs:
                    copies_by_src[tid] = kept_pairs
            top_copies.extend(dug._copies_by_dst.get(tid, ()))
        return {
            "node_by_uid": node_by_uid,
            "out_edges": out_edges,
            "inj_targets": inj_targets,
            "seeds": seeds,
            "plan": plan,
            "kernel_unavailable": kernel_unavailable,
            "rank_key": rank_key,
            "top_users": top_users,
            "copies_by_src": copies_by_src,
            "top_copies": top_copies,
        }

    def _prepare_demand_schedule(self, node_uids: Set[int],
                                 temp_ids: Set[int]) -> None:
        """:meth:`_prepare_schedule` for a slice: slice-local SCC
        ranks, a slice-filtered schedule bundle, and the same backend
        resolution ladder (tracing/mixed-object demote to scalar,
        auto-numpy demotes to python on thin plans)."""
        self._rank, self.scc_count = \
            self.dug.compute_topo_ranks_slice(node_uids, temp_ids)
        backend = backend_name(self.config.kernel)
        if backend is not None and self._force_scalar:
            backend = None
        if backend is not None and self.provenance is not None:
            self.kernel_fallbacks = 1
            backend = None
        sched = self._build_demand_schedule(node_uids, temp_ids,
                                            backend is not None)
        if backend is not None and sched["plan"] is None:
            if sched["kernel_unavailable"] == "mixed-object":
                self.kernel_fallbacks = 1
            sched = self._build_demand_schedule(node_uids, temp_ids, False)
            backend = None
        self._node_by_uid = sched["node_by_uid"]
        self._out_edges = sched["out_edges"]
        self._inj_targets = sched["inj_targets"]
        self._seeds = sched["seeds"]
        if backend is not None:
            self._plan = sched["plan"]
            if backend == "numpy" and self.config.kernel == "auto" and \
                    self._plan.max_reach < AUTO_NUMPY_MIN_REACH:
                backend = "python"
            self._kern = make_kernel(backend, self._plan, len(self.universe))
            self.kernel_backend = backend
        self._rank_key = sched["rank_key"]
        self._heap = []
        self._top_users_map = sched["top_users"]
        self._copies_by_src = sched["copies_by_src"]
        self._top_copies = sched["top_copies"]

    def solve_demand(self, node_uids: Set[int], temp_ids: Set[int]) -> None:
        """Solve only the sub-DUG induced by an upstream-closure
        slice.

        *node_uids* / *temp_ids* must come from
        :meth:`repro.memssa.dug.DUG.upstream_closure` and are
        therefore predecessor-closed: every value a slice member's
        transfer function reads is itself in the slice, so on slice
        members the computed fixpoint is bit-identical to
        :meth:`solve`'s whole-program one (pinned by
        ``tests/fsam/test_query.py``). States of temps and nodes
        outside the slice are *not* computed — callers must read
        results only inside the slice (the query engine enforces
        this).
        """
        self._prepare_demand_schedule(node_uids, temp_ids)
        self._solve_prepared()

    @staticmethod
    def _is_seed(node: DUGNode) -> bool:
        """Nodes that can produce facts from nothing: AddrOf
        statements, copies/phis of function values, and fork-handle
        chis (their thread-id write needs no incoming state once the
        handle pointer resolves)."""
        if isinstance(node, StmtNode):
            instr = node.instr
            return (isinstance(instr, AddrOf)
                    or (isinstance(instr, Copy)
                        and isinstance(instr.src, Function))
                    or (isinstance(instr, Phi)
                        and any(isinstance(v, Function)
                                for v, _b in instr.incomings)))
        return (isinstance(node, CallChiNode)
                and isinstance(node.site, Fork)
                and node.site.handle_ptr is not None)

    def _seed(self) -> int:
        """Activate the fact sources. Top-level-only seeds (AddrOf,
        function-value copies/phis) read no solver state, so they are
        evaluated on the spot rather than paying a queue round-trip
        each; everything else (fork-handle chis) is enqueued. Returns
        the number of direct evaluations (they count as iterations)."""
        node_by_uid = self._node_by_uid
        visited = self._visited
        direct = 0
        for node in self._seeds:
            self.seeded_nodes += 1
            tag = node_by_uid[node.uid][1]
            if tag >= TAG_ADDR:
                visited.add(node.uid)
                direct += 1
                self._eval_top_stmt(node, node.instr, tag)
            else:
                self._push_top(node)
        return direct

    def solve(self) -> None:
        self._prepare_schedule()
        self._solve_prepared()

    def _solve_prepared(self) -> None:
        """The engine proper, shared by :meth:`solve` (whole-program
        schedule) and :meth:`solve_demand` (slice schedule): evaluate
        the interprocedural copies, seed, drain the worklist, and
        finalize/materialize."""
        tracing = self.provenance is not None
        # Interprocedural top-level copies whose sources are constants
        # or function values never re-trigger; evaluate them up front.
        for src, dst in self._top_copies:
            self._set_top(dst, self._value_mask(src),
                          ("copy-chain", src) if tracing else None)
        iterations = self._seed()
        queued = self._queued
        node_by_uid = self._node_by_uid
        visited = self._visited
        kern = self._kern
        deadline = self.deadline
        heap = self._heap
        top_dirty = self._top_dirty
        if kern is None:
            self._run_scalar_loop(iterations)
            return
        deliver = self._deliver_boundary
        while queued or kern.has_pending:
            # Rank-gated flush: buffered injections must land before
            # the worklist evaluates anything that can observe them —
            # the earliest such visit is at the plan's precomputed
            # min boundary-reader rank. Flushing no earlier than that
            # is pure batching: states are monotone, interiors are
            # never read mid-solve, and the readers' pend deltas are
            # delivered by the flush itself.
            if queued:
                key = heap[0]
                if kern.pending_min_rank <= key >> 32:
                    kern.flush(deliver)
                    continue  # deliveries may have lowered the min key
                if deadline is not None and iterations % 256 == 0:
                    deadline.check()
                iterations += 1
                heappop(heap)
                uid = key & 0xFFFFFFFF
                queued.discard(uid)
                visited.add(uid)
                node, tag = node_by_uid[uid]
                if tag >= TAG_ADDR:
                    if uid in top_dirty:
                        top_dirty.remove(uid)
                        self._eval_top_stmt(node, node.instr, tag)
                    continue
                self._eval(node, tag)
            else:
                kern.flush(deliver)
        self.iterations = iterations
        self._finalize_states()
        # Interior merge states were never touched during the solve;
        # reconstruct every final state in one DAG sweep. Rows arrive
        # grouped by SCC, so each distinct mask is interned once and
        # the resulting set is shared across all member rows.
        from_mask = self.universe.from_mask
        mem = self.mem
        for mask, nodes in kern.materialize():
            state = from_mask(mask)
            for node in nodes:
                mem[(node.uid, node.obj.id)] = state

    def _run_scalar_loop(self, iterations: int) -> None:
        """Drain the worklist on the scalar delta path and finalize.
        *iterations* counts work already done (direct seed evals)."""
        queued = self._queued
        node_by_uid = self._node_by_uid
        visited = self._visited
        deadline = self.deadline
        heap = self._heap
        top_dirty = self._top_dirty
        while queued:
            if deadline is not None and iterations % 256 == 0:
                deadline.check()
            iterations += 1
            uid = heappop(heap) & 0xFFFFFFFF
            queued.discard(uid)
            visited.add(uid)
            node, tag = node_by_uid[uid]
            if tag >= TAG_ADDR:
                # Top-level-only statements (the bulk of visits):
                # no memory in-edges, so no pending book to pop.
                if uid in top_dirty:
                    top_dirty.remove(uid)
                    self._eval_top_stmt(node, node.instr, tag)
                continue
            self._eval(node, tag)
        self.iterations = iterations
        self._finalize_states()

    def solve_incremental(self, reuse: IncrementalReuse) -> None:
        """Re-solve after an edit, reusing a previous fixpoint's
        frozen region.

        The frozen node/temp sets are predecessor-closed (see
        :class:`IncrementalReuse`), so the preloaded states *are* the
        new fixpoint over that region: the subsystem they solve is
        isomorphic between runs by construction of the per-function
        context signatures. The downstream complement is recomputed
        from scratch, with complete input delivery:

        - **wake rule** — every non-frozen top-level user of a frozen
          temp with a nonzero mask is pushed dirty, so downstream
          loads/stores/geps/fork-chis whose operands never change
          during this solve still classify against them;
        - **boundary delivery** — every frozen node's per-object state
          is delivered once as a pending delta along its out-edges
          into non-frozen successors (the same channel a live
          ``_set_mem`` would have used);
        - **seeding** — fact sources (AddrOf, function-valued
          copies/phis, fork-handle chis) are seeded only outside the
          frozen region; inside it their effects are already in the
          preloaded states.

        Frozen nodes are never enqueued: their in-edges all come from
        frozen nodes (whose states never grow — they are complete) and
        the wake rule filters them out explicitly. The result is
        bit-identical to :meth:`solve` on the same graph.
        """
        self._force_scalar = True
        self._prepare_schedule()
        frozen = reuse.frozen_uids
        self._frozen_uids = frozen
        tracing = self.provenance is not None
        # Preload the frozen share of the previous fixpoint.
        self._top_masks.update(reuse.top_masks)
        self._mem_masks.update(reuse.mem_masks)
        # Wake rule.
        for temp_id, mask in reuse.top_masks.items():
            if not mask:
                continue
            for user in self._top_users_map.get(temp_id, ()):
                if user.uid not in frozen:
                    self._push_top(user)
        # Boundary delivery.
        pending = self._pending
        pending_thread = self._pending_thread
        for (uid, obj_id), mask in reuse.mem_masks.items():
            if not mask:
                continue
            by_obj = self._out_edges.get(uid)
            if by_obj is None:
                continue
            for out_obj, dst, thread_to_load in by_obj.get(obj_id, ()):
                if dst.uid in frozen:
                    continue
                self.delta_propagations += 1
                book = pending_thread if thread_to_load else pending
                slot = book.setdefault(dst.uid, {})
                entry = slot.get(obj_id)
                if entry is None:
                    slot[obj_id] = [out_obj, mask]
                else:
                    entry[1] |= mask
                self._push(dst)
        # Constant/function-valued interprocedural copies, as in
        # solve(): a frozen destination already holds a superset of
        # every source (its copy sources are frozen too), so these
        # no-op there and only feed the downstream region.
        for src, dst in self.dug.top_copies:
            self._set_top(dst, self._value_mask(src),
                          ("copy-chain", src) if tracing else None)
        # Seed the downstream region only.
        node_by_uid = self._node_by_uid
        visited = self._visited
        direct = 0
        for node in self._seeds:
            if node.uid in frozen:
                continue
            tag = node_by_uid[node.uid][1]
            if tag >= TAG_ADDR:
                visited.add(node.uid)
                direct += 1
                self._eval_top_stmt(node, node.instr, tag)
            else:
                self._push_top(node)
        self.seeded_nodes = direct + len(self._queued)
        self._run_scalar_loop(direct)

    def _finalize_states(self) -> None:
        """Intern the raw-mask fixpoint into the public PTSet views
        (``pts_top``/``mem``). The solve itself never touches the
        interning table for state updates — only distinct final masks
        are interned, here, once."""
        from_mask = self.universe.from_mask
        memo: Dict[int, PTSet] = {}
        memo_get = memo.get
        pts_top = self.pts_top
        for tid, m in self._top_masks.items():
            s = memo_get(m)
            if s is None:
                s = memo[m] = from_mask(m)
            pts_top[tid] = s
        mem = self.mem
        for key, m in self._mem_masks.items():
            s = memo_get(m)
            if s is None:
                s = memo[m] = from_mask(m)
            mem[key] = s

    def _deliver_boundary(self, boundary_id: int, new_bits: int) -> None:
        """Kernel flush callback: route a boundary row's newly-grown
        bits into the scalar pending books, exactly as a scalar
        ``_set_mem`` at the merge node would have."""
        pending = self._pending
        pending_thread = self._pending_thread
        for obj, dst, thread_to_load in self._plan.boundary_edges[boundary_id]:
            self.delta_propagations += 1
            book = pending_thread if thread_to_load else pending
            slot = book.setdefault(dst.uid, {})
            entry = slot.get(obj.id)
            if entry is None:
                slot[obj.id] = [obj, new_bits]
            else:
                entry[1] |= new_bits
            self._push(dst)

    _MERGE_RULES = {
        MemPhiNode: "mem-phi",
        FormalInNode: "formal-in",
        FormalOutNode: "formal-out",
        CallMuNode: "call-mu",
    }

    def _eval(self, node: DUGNode, tag: int) -> None:
        uid = node.uid
        top_dirty = self._top_dirty
        if uid in top_dirty:
            top_dirty.remove(uid)
            dirty = True
        else:
            dirty = False
        if tag >= TAG_ADDR:
            # Top-level-only statements: no memory in-edges, so the
            # pending book can never hold a delta for them.
            if dirty:
                self._eval_top_stmt(node, node.instr, tag)
            return
        pend = self._pending.pop(uid, None)
        if tag == TAG_LOAD:
            self._eval_load(node, node.instr, dirty, pend)
        elif tag == TAG_STORE:
            self._eval_store(node, node.instr, dirty, pend)
        elif tag == TAG_CHI:
            self._eval_call_chi(node, dirty, pend)
        elif pend:
            # Merge pseudo-statements (memory phi, formal-in/out,
            # call-mu): the state is the union of everything that ever
            # arrived, so folding the pending delta is the whole
            # transfer — no _in_values rescan.
            obj = node.obj
            entry = pend.get(obj.id)
            if entry is not None and entry[1]:
                prov = None
                if self.provenance is not None:
                    prov = (self._MERGE_RULES[type(node)], node)
                self._set_mem(node, obj, entry[1], prov)

    def _eval_call_chi(self, node: CallChiNode, dirty: bool,
                       pend: Optional[Dict[int, List]]) -> None:
        obj = node.obj
        mask = 0
        if pend is not None:
            entry = pend.get(obj.id)
            if entry is not None:
                mask = entry[1]
        if dirty:
            site = node.site
            if isinstance(site, Fork) and site.handle_ptr is not None:
                # The fork's write of the abstract thread id into the
                # handle slot happens at this chi; the chi is a
                # top-level user of the handle pointer, so it re-runs
                # whenever pt(handle) grows.
                if self.universe.mask_contains(
                        self._value_mask(site.handle_ptr), obj):
                    tid = self.andersen.thread_objects.get(site.id)
                    if tid is not None:
                        mask |= self.universe.singleton(tid).mask
        if mask:
            prov = ("call-chi", node) if self.provenance is not None else None
            self._set_mem(node, obj, mask, prov)

    def _eval_top_stmt(self, node: StmtNode, instr, tag: int) -> None:
        tracing = self.provenance is not None
        if tag == TAG_COPY:
            self._set_top(instr.dst, self._value_mask(instr.src),
                          ("copy", node) if tracing else None)
        elif tag == TAG_ADDR:
            self._set_top(instr.dst, self.universe.singleton(instr.obj).mask,
                          ("addr", node) if tracing else None)
        elif tag == TAG_PHI:
            mask = 0
            for value, _block in instr.incomings:
                mask |= self._value_mask(value)
            self._set_top(instr.dst, mask,
                          ("phi", node) if tracing else None)
        elif tag == TAG_GEP:
            # Incremental: pt(base) is monotone, so only derive fields
            # for base objects new since the last visit — revisits of
            # a hot gep stop re-walking the whole base set.
            cache = self._gep_cache.get(node.uid)
            if cache is None:
                cache = self._gep_cache[node.uid] = [0, 0]
            base_mask = self._value_mask(instr.base)
            new_bits = base_mask & ~cache[0]
            if new_bits:
                cache[0] = base_mask
                universe = self.universe
                index = universe.index
                field_index = instr.field_index
                derived = 0
                for obj in universe.iter_mask(new_bits):
                    derived |= 1 << index(derive_field(obj, field_index))
                cache[1] |= derived
            self._set_top(instr.dst, cache[1],
                          ("gep", node) if tracing else None)
        # Call / Fork / Join: top-level linking flows through
        # dug.top_copies; memory effects flow through mu/chi nodes.

    def _eval_load(self, node: StmtNode, instr: Load, dirty: bool,
                   pend: Optional[Dict[int, List]]) -> None:
        uid = node.uid
        tpend = self._pending_thread.pop(uid, None)
        mask = 0
        seen = self._load_seen.get(uid)
        if dirty:
            # The pointer (or mus) view changed: fully read any
            # newly-reachable container once; afterwards its growth
            # arrives as deltas.
            mus = self.builder.mus.get(instr.id)
            container_mask = self._value_mask(instr.ptr) & mus.mask \
                if mus is not None else 0
            if container_mask:
                if seen is None:
                    seen = self._load_seen[uid] = set()
                for obj in self.universe.iter_mask(container_mask):
                    if obj.id in seen:
                        continue
                    seen.add(obj.id)
                    mask |= self._in_mask(node, obj)
        if pend and seen:
            for obj_id, entry in pend.items():
                if obj_id in seen:
                    mask |= entry[1]
        if tpend:
            # [THREAD-VF] edges are followed unconditionally, as the
            # paper's sparse analysis does: a spurious edge (e.g. with
            # the AS(*p,*q) premise disregarded in the No-Value-Flow
            # ablation) both costs propagation work and pollutes pt()
            # — exactly the Figure 1(e) effect.
            for entry in tpend.values():
                mask |= entry[1]
        if mask:
            tracing = self.provenance is not None
            self._set_top(instr.dst, mask,
                          ("load", node) if tracing else None)

    def _eval_store(self, node: StmtNode, instr: Store, dirty: bool,
                    pend: Optional[Dict[int, List]]) -> None:
        uid = node.uid
        tracing = self.provenance is not None
        if dirty:
            # Pointer or stored value changed: reclassify every chi
            # object against the new pt(ptr). The full _in_values
            # reads below subsume any pending deltas (predecessor
            # states are updated before deltas are enqueued), and
            # deltas into strong/kill-classified objects are dropped
            # by the rules themselves.
            universe = self.universe
            targets_mask = self._value_mask(instr.ptr)
            stored_mask = self._value_mask(instr.value)
            # Exactly one target <=> nonzero mask with one bit set.
            one_target = targets_mask != 0 and \
                targets_mask & (targets_mask - 1) == 0
            classes = self._store_class.get(uid)
            if classes is None:
                classes = self._store_class[uid] = {}
            for obj in self.builder.chis.get(instr.id, self.universe.empty):
                if not targets_mask:
                    # kill(s, p) = A for an empty pointer: the store
                    # goes nowhere known; nothing propagates (paper
                    # Figure 10).
                    classes[obj.id] = KILL
                    continue
                if not universe.mask_contains(targets_mask, obj):
                    # Pass-through: the store cannot touch obj.
                    classes[obj.id] = PASS
                    self._set_mem(node, obj, self._in_mask(node, obj),
                                  ("store-through", node) if tracing else None)
                    continue
                strong = one_target and obj.is_singleton
                if strong and \
                        not self.config.strong_updates_at_interfering_stores:
                    strong = not self.dug.is_interfering(node, obj)
                if strong:
                    classes[obj.id] = STRONG
                    self.strong_updates += 1
                    self._set_mem(node, obj, stored_mask,
                                  ("store-strong", node) if tracing else None)
                else:
                    classes[obj.id] = WEAK
                    self.weak_updates += 1
                    self._set_mem(node, obj,
                                  stored_mask | self._in_mask(node, obj),
                                  ("store-weak", node) if tracing else None)
            return
        if not pend:
            return
        classes = self._store_class.get(uid)
        if classes is None:
            # Never visited top-dirty: pt(ptr) is still empty, so
            # every object is killed (nothing propagates).
            return
        for obj_id, entry in pend.items():
            cls = classes.get(obj_id)
            if cls is PASS:
                self._set_mem(node, entry[0], entry[1],
                              ("store-through", node) if tracing else None)
            elif cls is WEAK:
                self.weak_updates += 1
                self._set_mem(node, entry[0], entry[1],
                              ("store-weak", node) if tracing else None)
            # STRONG / KILL: the incoming delta is killed by the rule.

    # -- derivation provenance ----------------------------------------------
    #
    # Only reached when tracing is on. For every object newly added to
    # a points-to state, record the Derivation that first introduced
    # the fact ("first-introduction semantics": later re-derivations
    # of the same fact are not recorded, so walking trigger links
    # always terminates at roots). Triggers are found by re-scanning
    # the solver state, which already holds the facts the transfer
    # read: predecessor states are updated before their deltas are
    # delivered.

    def _record_top(self, target: Temp, current_mask: int, vals_mask: int,
                    prov: Optional[Tuple]) -> None:
        rule, origin = prov if prov is not None else ("seed", None)
        assert self.provenance is not None
        for obj in self.universe.from_mask(vals_mask & ~current_mask):
            key = top_fact(target.id, obj.id)
            if key in self.provenance:
                continue
            derivation = self._derive_top(rule, origin, obj)
            self.provenance[key] = derivation
            self._emit_derive(key, derivation, f"pt(%{target.name})", obj)

    def _derive_top(self, rule: str, origin, obj: MemObject) -> Derivation:
        if rule == "addr":
            return Derivation("addr", origin, None)
        if rule == "copy-chain":
            # origin is the *source value* of an interprocedural copy.
            if isinstance(origin, Temp) and obj in self.value_pts(origin):
                return Derivation("copy", origin, top_fact(origin.id, obj.id))
            return Derivation("copy", origin, None)  # function/constant root
        if rule == "copy":
            src = origin.instr.src
            if isinstance(src, Temp) and obj in self.value_pts(src):
                return Derivation("copy", origin, top_fact(src.id, obj.id))
            return Derivation("copy", origin, None)
        if rule == "phi":
            for value, _block in origin.instr.incomings:
                if isinstance(value, Temp) and obj in self.value_pts(value):
                    return Derivation("phi", origin,
                                      top_fact(value.id, obj.id))
            return Derivation("phi", origin, None)
        if rule == "gep":
            base = origin.instr.base
            if isinstance(base, Temp):
                for base_obj in self.value_pts(base):
                    derived = derive_field(base_obj, origin.instr.field_index)
                    if derived.id == obj.id:
                        return Derivation("gep", origin,
                                          top_fact(base.id, base_obj.id))
            return Derivation("gep", origin, None)
        if rule == "load":
            return self._derive_load(origin, obj)
        return Derivation(rule, origin, None)

    def _derive_load(self, node: StmtNode, obj: MemObject) -> Derivation:
        """Which incoming memory state handed *obj* to this load —
        checking the sparse (sequential) in-edges first, then the
        [THREAD-VF] edges, so a fact only explicable through thread
        interference is attributed to its thread-aware edge."""
        universe = self.universe
        mem_masks = self._mem_masks
        instr = node.instr
        containers = self.value_pts(instr.ptr) & \
            self.builder.mus.get(instr.id, universe.empty)
        for container in containers:
            for src in self.dug.mem_defs_of(node, container):
                # Thread-aware edges also live in _mem_in; defer them
                # to the second pass so they carry their annotation.
                if self.dug.is_thread_edge(src, container, node):
                    continue
                if universe.mask_contains(
                        mem_masks.get((src.uid, container.id), 0), obj):
                    return Derivation(
                        "load", node,
                        mem_fact(src.uid, container.id, obj.id))
        for container, src in self.dug.thread_in_edges(node):
            if universe.mask_contains(
                    mem_masks.get((src.uid, container.id), 0), obj):
                return Derivation(
                    "load", node,
                    mem_fact(src.uid, container.id, obj.id),
                    thread_edge=True,
                    edge=(src.uid, container.id, node.uid))
        return Derivation("load", node, None)

    def _record_mem(self, node: DUGNode, container: MemObject,
                    current_mask: int, vals_mask: int,
                    prov: Optional[Tuple]) -> None:
        rule, origin = prov if prov is not None else ("seed", node)
        assert self.provenance is not None
        for obj in self.universe.from_mask(vals_mask & ~current_mask):
            key = mem_fact(node.uid, container.id, obj.id)
            if key in self.provenance:
                continue
            derivation = self._derive_mem(rule, node, container, obj)
            self.provenance[key] = derivation
            self._emit_derive(key, derivation,
                              f"state({container.name})", obj)

    def _derive_mem(self, rule: str, node: DUGNode, container: MemObject,
                    obj: MemObject) -> Derivation:
        if rule in ("store-strong", "store-weak"):
            value = node.instr.value
            if isinstance(value, (Temp, Function)) and \
                    obj in self.value_pts(value):
                trigger = top_fact(value.id, obj.id) \
                    if isinstance(value, Temp) else None
                return Derivation(rule, node, trigger)
            # Weak update: the object survived from the incoming state.
        incoming = self._find_mem_trigger(node, container, obj)
        if incoming is not None:
            return Derivation(rule, node, incoming)
        if rule == "call-chi" and isinstance(node, CallChiNode) \
                and isinstance(node.site, Fork):
            # The abstract thread id written into the fork handle has
            # no def-use predecessor: it is a provenance root.
            return Derivation("fork-handle", node, None)
        return Derivation(rule, node, None)

    def _find_mem_trigger(self, node: DUGNode, container: MemObject,
                          obj: MemObject) -> Optional[Tuple]:
        universe = self.universe
        mem_masks = self._mem_masks
        for src in self.dug.mem_defs_of(node, container):
            if universe.mask_contains(
                    mem_masks.get((src.uid, container.id), 0), obj):
                return mem_fact(src.uid, container.id, obj.id)
        return None

    def _emit_derive(self, key: Tuple, derivation: Derivation,
                     subject: str, obj: MemObject) -> None:
        origin = derivation.origin
        line = None
        if isinstance(origin, StmtNode) and origin.instr.line:
            line = origin.instr.line
        self.tracer.emit(
            "derive", kind=key[0], fact=list(key), subject=subject,
            obj=obj.name, obj_id=obj.id, rule=derivation.rule,
            origin=repr(origin) if origin is not None else None,
            line=line,
            trigger=list(derivation.trigger) if derivation.trigger else None,
            thread_edge=derivation.thread_edge)

    # -- metrics ------------------------------------------------------------

    def points_to_entries(self) -> int:
        """A memory-consumption proxy: the total number of (program
        point, variable) -> target facts the solver materialised.

        Counted as bitmask popcounts over the interned sets, so the
        number matches the pre-interning ``Set[MemObject]`` counting
        and Table 2 stays comparable (the *storage* is shared, the
        *fact count* is not deduplicated).
        """
        total = sum(len(s) for s in self.pts_top.values())
        total += sum(len(s) for s in self.mem.values())
        return total

    def flush_obs(self, obs: Observer) -> None:
        obs.count("solver.iterations", self.iterations)
        # Strong/weak tallies count store *evaluations* (full
        # reclassifications plus weak delta folds), so re-visits of
        # the same store under new facts count again — a measure of
        # work done, not of distinct update sites.
        obs.count("solver.strong_updates", self.strong_updates)
        obs.count("solver.weak_updates", self.weak_updates)
        obs.count("solver.node_revisits",
                  max(0, self.iterations - len(self._visited)))
        obs.count("solver.delta_propagations", self.delta_propagations)
        obs.count("solver.seeded_nodes", self.seeded_nodes)
        # Kernel accounting: batches = flush sweeps, injections =
        # scalar deltas entering the merge subgraph, updates =
        # boundary rows actually grown, fallbacks = runs that
        # requested a kernel but had to take the scalar path.
        kern = self._kern
        obs.count("solver.kernel_batches", kern.batches if kern else 0)
        obs.count("solver.kernel_injections", kern.injections if kern else 0)
        obs.count("solver.kernel_updates", kern.updates if kern else 0)
        obs.count("solver.kernel_fallbacks", self.kernel_fallbacks)
        if self._plan is not None:
            obs.gauge("solver.kernel_rows", self._plan.n_rows)
            obs.gauge("solver.kernel_boundary_rows", self._plan.n_boundary)
        obs.gauge("solver.sccs", self.scc_count)
        obs.gauge("solver.dug_nodes", len(self.dug.nodes))
        obs.gauge("solver.points_to_entries", self.points_to_entries())
        if self.provenance is not None:
            obs.gauge("trace.provenance_facts", len(self.provenance))
        ustats = self.universe.stats()
        obs.count("pts.set_references", int(ustats["set_references"]))
        obs.count("pts.union_cache_hits", int(ustats["union_cache_hits"]))
        obs.count("pts.intersect_cache_hits",
                  int(ustats["intersect_cache_hits"]))
        obs.count("pts.cache_clears", int(ustats["cache_clears"]))
        obs.gauge("pts.distinct_sets", int(ustats["distinct_sets"]))
        obs.gauge("pts.objects", int(ustats["objects"]))
        obs.gauge("pts.dedup_ratio", round(float(ustats["dedup_ratio"]), 3))


def store_update_classes(solver) -> Dict[Tuple[int, int], str]:
    """Final strong/weak classification per (store instruction id,
    object id), derived from the solver's fixpoint state.

    Works for any engine exposing ``value_pts``/``builder``/``dug``/
    ``config`` (the production :class:`SparseSolver` and the
    :class:`~repro.fsam.reference.ReferenceSolver`), so differential
    tests can assert the engines agree on every [P-SU]/[P-WU]
    decision, not just on the points-to sets.
    """
    classes: Dict[Tuple[int, int], str] = {}
    builder = solver.builder
    config = solver.config
    dug = solver.dug
    for fn in solver.module.functions.values():
        for instr in fn.instructions():
            if not isinstance(instr, Store):
                continue
            targets = solver.value_pts(instr.ptr)
            node = dug.stmt_node(instr) if dug.has_stmt(instr) else None
            for obj in builder.chis.get(instr.id, ()):
                if not targets:
                    cls = KILL
                elif obj not in targets:
                    cls = PASS
                else:
                    strong = len(targets) == 1 and obj.is_singleton
                    if strong and node is not None and \
                            not config.strong_updates_at_interfering_stores:
                        strong = not dug.is_interfering(node, obj)
                    cls = STRONG if strong else WEAK
                classes[(instr.id, obj.id)] = cls
    return classes
