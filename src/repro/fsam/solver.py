"""The sparse flow-sensitive points-to solver (paper Figure 10).

Propagates points-to facts only along the DUG's pre-computed def-use
edges:

- top-level SSA variables get one global points-to set each — SSA
  form makes this flow-sensitive by construction;
- address-taken objects get one points-to set per defining DUG node
  (stores, chi/phi/formal pseudo-statements), connected by the
  o-labelled edges.

Rule correspondence:

- [P-ADDR]/[P-COPY]/[P-PHI] — direct top-level updates.
- [P-LOAD]   — a load reads the o-states reaching it for each o in
  the (sparse) points-to set of its pointer.
- [P-STORE]  — a store writes its value's points-to set into each o
  it may target.
- [P-SU/WU]  — a strong update (incoming state killed) happens when
  the pointer resolves to exactly one singleton object; otherwise the
  old state merges in (weak). Objects the store cannot target pass
  through unchanged; a store through a null/empty pointer kills
  everything (kill = A).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set, Tuple

from repro.andersen import AndersenResult
from repro.andersen.fields import derive_field
from repro.fsam.config import Deadline, FSAMConfig
from repro.ir.instructions import (
    AddrOf, Call, Copy, Fork, Gep, Join, Load, Phi, Store,
)
from repro.ir.module import Module
from repro.ir.values import Constant, Function, MemObject, Temp, Value
from repro.memssa.builder import MemorySSABuilder
from repro.memssa.dug import (
    CallChiNode, CallMuNode, DUG, DUGNode, FormalInNode, FormalOutNode,
    MemPhiNode, StmtNode,
)
from repro.obs import Observer
from repro.pts import PTSet, PTUniverse
from repro.trace import Derivation, NULL_TRACER, Tracer, mem_fact, top_fact


class SparseSolver:
    """Worklist solver over the DUG.

    All per-variable (``pts_top``) and per-definition (``mem``) state
    is held as interned :class:`~repro.pts.PTSet` bitmasks over the
    pre-analysis universe, so the delta checks in ``_set_top`` /
    ``_set_mem`` are O(1) subset tests on masks and unchanged unions
    return the existing instance.

    When constructed with an enabled :class:`~repro.trace.Tracer`, the
    solver additionally records **derivation provenance**: for every
    ``(variable, object)`` and ``(memory state, object)`` fact, the
    rule, node, and trigger fact that *first* introduced it (stored in
    :attr:`provenance`, emitted as ``derive`` events). With the
    default :data:`~repro.trace.NULL_TRACER` the hot paths pay only a
    ``provenance is None`` check per state change.
    """

    def __init__(self, module: Module, dug: DUG, builder: MemorySSABuilder,
                 andersen: AndersenResult, config: Optional[FSAMConfig] = None,
                 deadline: Optional[Deadline] = None,
                 tracer: Tracer = NULL_TRACER) -> None:
        self.module = module
        self.dug = dug
        self.builder = builder
        self.andersen = andersen
        self.universe: PTUniverse = andersen.universe
        self.config = config or FSAMConfig()
        self.deadline = deadline
        self.tracer = tracer
        # Fact key -> Derivation; None when tracing is off so the hot
        # path's guard is a single identity test.
        self.provenance: Optional[Dict[Tuple, Derivation]] = \
            {} if tracer.enabled else None
        self.pts_top: Dict[int, PTSet] = {}
        self.mem: Dict[Tuple[int, int], PTSet] = {}
        self._work: deque = deque()
        self._queued: Set[int] = set()
        self.iterations = 0
        self.strong_updates = 0
        self.weak_updates = 0

    # -- state access ----------------------------------------------------

    def top(self, temp: Temp) -> PTSet:
        return self.pts_top.get(temp.id, self.universe.empty)

    def value_pts(self, value: Optional[Value]) -> PTSet:
        """Points-to set of any value operand."""
        if value is None or isinstance(value, Constant):
            return self.universe.empty
        if isinstance(value, Function):
            return self.universe.singleton(value.mem_object)
        if isinstance(value, Temp):
            return self.pts_top.get(value.id, self.universe.empty)
        return self.universe.empty

    def mem_state(self, node: DUGNode, obj: MemObject) -> PTSet:
        """The o-state defined at *node*."""
        return self.mem.get((node.uid, obj.id), self.universe.empty)

    def _in_values(self, node: DUGNode, obj: MemObject) -> PTSet:
        empty = self.universe.empty
        result = empty
        for src in self.dug.mem_defs_of(node, obj):
            result = result | self.mem.get((src.uid, obj.id), empty)
        return result

    # -- state updates ------------------------------------------------------

    def _push(self, node: DUGNode) -> None:
        if node.uid not in self._queued:
            self._queued.add(node.uid)
            self._work.append(node)

    def _set_top(self, temp: Temp, values: PTSet, prov=None) -> None:
        empty = self.universe.empty
        tracing = self.provenance is not None
        pending = [(temp, values, prov)]
        while pending:
            target, vals, p = pending.pop()
            current = self.pts_top.get(target.id, empty)
            merged = current | vals
            if merged is current:  # vals ⊆ current: O(1) mask subset test
                continue
            if tracing:
                self._record_top(target, current, vals, p)
            self.pts_top[target.id] = merged
            for user in self.dug.top_users(target):
                self._push(user)
            for src, dst in self.dug.copies_from(target):
                pending.append((dst, self.value_pts(src),
                                ("copy-chain", src) if tracing else None))

    def _set_mem(self, node: DUGNode, obj: MemObject, values: PTSet,
                 prov=None) -> None:
        key = (node.uid, obj.id)
        current = self.mem.get(key, self.universe.empty)
        merged = current | values
        if merged is current:
            return
        if self.provenance is not None:
            self._record_mem(node, obj, current, values, prov)
        self.mem[key] = merged
        for out_obj, dst in self.dug.mem_out(node):
            # Compare by object id: field-derived MemObjects can in
            # principle be equal-but-distinct instances, and an
            # identity miss here silently drops o-edge propagation.
            if out_obj.id == obj.id:
                self._push(dst)

    # -- solving ---------------------------------------------------------------

    def solve(self) -> None:
        tracing = self.provenance is not None
        # Interprocedural top-level copies whose sources are constants
        # or function values never re-trigger; evaluate them up front.
        for src, dst in self.dug.top_copies:
            self._set_top(dst, self.value_pts(src),
                          ("copy-chain", src) if tracing else None)
        for node in self.dug.nodes:
            self._push(node)
        while self._work:
            if self.deadline is not None and self.iterations % 256 == 0:
                self.deadline.check()
            self.iterations += 1
            node = self._work.popleft()
            self._queued.discard(node.uid)
            self._eval(node)

    _MERGE_RULES = {
        MemPhiNode: "mem-phi",
        FormalInNode: "formal-in",
        FormalOutNode: "formal-out",
        CallMuNode: "call-mu",
    }

    def _eval(self, node: DUGNode) -> None:
        if isinstance(node, StmtNode):
            self._eval_stmt(node)
        elif isinstance(node, (MemPhiNode, FormalInNode, FormalOutNode, CallMuNode)):
            obj = node.obj
            prov = None
            if self.provenance is not None:
                prov = (self._MERGE_RULES[type(node)], node)
            self._set_mem(node, obj, self._in_values(node, obj), prov)
        elif isinstance(node, CallChiNode):
            self._eval_call_chi(node)

    def _eval_call_chi(self, node: CallChiNode) -> None:
        obj = node.obj
        values = self._in_values(node, obj)
        site = node.site
        if isinstance(site, Fork) and site.handle_ptr is not None:
            # The fork's write of the abstract thread id into the
            # handle slot happens at this chi.
            if obj in self.value_pts(site.handle_ptr):
                tid = self.andersen.thread_objects.get(site.id)
                if tid is not None:
                    values = values | self.universe.singleton(tid)
        prov = ("call-chi", node) if self.provenance is not None else None
        self._set_mem(node, obj, values, prov)

    def _eval_stmt(self, node: StmtNode) -> None:
        instr = node.instr
        tracing = self.provenance is not None
        if isinstance(instr, AddrOf):
            self._set_top(instr.dst, {instr.obj},
                          ("addr", node) if tracing else None)
        elif isinstance(instr, Copy):
            self._set_top(instr.dst, self.value_pts(instr.src),
                          ("copy", node) if tracing else None)
        elif isinstance(instr, Phi):
            merged = self.universe.empty
            for value, _block in instr.incomings:
                merged = merged | self.value_pts(value)
            self._set_top(instr.dst, merged,
                          ("phi", node) if tracing else None)
        elif isinstance(instr, Gep):
            derived = self.universe.make(
                derive_field(obj, instr.field_index)
                for obj in self.value_pts(instr.base))
            self._set_top(instr.dst, derived,
                          ("gep", node) if tracing else None)
        elif isinstance(instr, Load):
            empty = self.universe.empty
            objs = self.value_pts(instr.ptr)
            values = empty
            for obj in objs & self.builder.mus.get(instr.id, empty):
                values = values | self._in_values(node, obj)
            # [THREAD-VF] edges are followed unconditionally, as the
            # paper's sparse analysis does: a spurious edge (e.g. with
            # the AS(*p,*q) premise disregarded in the No-Value-Flow
            # ablation) both costs propagation work and pollutes pt()
            # — exactly the Figure 1(e) effect.
            for obj, src in self.dug.thread_in_edges(node):
                values = values | self.mem.get((src.uid, obj.id), empty)
            self._set_top(instr.dst, values,
                          ("load", node) if tracing else None)
        elif isinstance(instr, Store):
            self._eval_store(node, instr)
        # Call / Fork / Join: top-level linking flows through
        # dug.top_copies; memory effects flow through mu/chi nodes.

    def _eval_store(self, node: StmtNode, instr: Store) -> None:
        targets = self.value_pts(instr.ptr)
        stored = self.value_pts(instr.value)
        tracing = self.provenance is not None
        for obj in self.builder.chis.get(instr.id, self.universe.empty):
            if not targets:
                # kill(s, p) = A for an empty pointer: the store goes
                # nowhere known; nothing propagates (paper Figure 10).
                continue
            if obj not in targets:
                # Pass-through: the store cannot touch obj.
                self._set_mem(node, obj, self._in_values(node, obj),
                              ("store-through", node) if tracing else None)
                continue
            strong = len(targets) == 1 and obj.is_singleton
            if strong and not self.config.strong_updates_at_interfering_stores:
                strong = not self.dug.is_interfering(node, obj)
            if strong:
                self.strong_updates += 1
                self._set_mem(node, obj, stored,
                              ("store-strong", node) if tracing else None)
            else:
                self.weak_updates += 1
                self._set_mem(node, obj, stored | self._in_values(node, obj),
                              ("store-weak", node) if tracing else None)

    # -- derivation provenance ----------------------------------------------
    #
    # Only reached when tracing is on. For every object newly added to
    # a points-to state, record the Derivation that first introduced
    # the fact ("first-introduction semantics": later re-derivations
    # of the same fact are not recorded, so walking trigger links
    # always terminates at roots). Triggers are found by re-scanning
    # the *pre-update* solver state, which still holds exactly the
    # facts the transfer rule read.

    def _record_top(self, target: Temp, current: PTSet, vals,
                    prov: Optional[Tuple]) -> None:
        rule, origin = prov if prov is not None else ("seed", None)
        assert self.provenance is not None
        for obj in vals:
            if obj in current:
                continue
            key = top_fact(target.id, obj.id)
            if key in self.provenance:
                continue
            derivation = self._derive_top(rule, origin, obj)
            self.provenance[key] = derivation
            self._emit_derive(key, derivation, f"pt(%{target.name})", obj)

    def _derive_top(self, rule: str, origin, obj: MemObject) -> Derivation:
        if rule == "addr":
            return Derivation("addr", origin, None)
        if rule == "copy-chain":
            # origin is the *source value* of an interprocedural copy.
            if isinstance(origin, Temp) and obj in self.value_pts(origin):
                return Derivation("copy", origin, top_fact(origin.id, obj.id))
            return Derivation("copy", origin, None)  # function/constant root
        if rule == "copy":
            src = origin.instr.src
            if isinstance(src, Temp) and obj in self.value_pts(src):
                return Derivation("copy", origin, top_fact(src.id, obj.id))
            return Derivation("copy", origin, None)
        if rule == "phi":
            for value, _block in origin.instr.incomings:
                if isinstance(value, Temp) and obj in self.value_pts(value):
                    return Derivation("phi", origin,
                                      top_fact(value.id, obj.id))
            return Derivation("phi", origin, None)
        if rule == "gep":
            base = origin.instr.base
            if isinstance(base, Temp):
                for base_obj in self.value_pts(base):
                    derived = derive_field(base_obj, origin.instr.field_index)
                    if derived.id == obj.id:
                        return Derivation("gep", origin,
                                          top_fact(base.id, base_obj.id))
            return Derivation("gep", origin, None)
        if rule == "load":
            return self._derive_load(origin, obj)
        return Derivation(rule, origin, None)

    def _derive_load(self, node: StmtNode, obj: MemObject) -> Derivation:
        """Which incoming memory state handed *obj* to this load —
        checking the sparse (sequential) in-edges first, then the
        [THREAD-VF] edges, so a fact only explicable through thread
        interference is attributed to its thread-aware edge."""
        empty = self.universe.empty
        instr = node.instr
        containers = self.value_pts(instr.ptr) & \
            self.builder.mus.get(instr.id, empty)
        for container in containers:
            for src in self.dug.mem_defs_of(node, container):
                # Thread-aware edges also live in _mem_in; defer them
                # to the second pass so they carry their annotation.
                if self.dug.is_thread_edge(src, container, node):
                    continue
                if obj in self.mem.get((src.uid, container.id), empty):
                    return Derivation(
                        "load", node,
                        mem_fact(src.uid, container.id, obj.id))
        for container, src in self.dug.thread_in_edges(node):
            if obj in self.mem.get((src.uid, container.id), empty):
                return Derivation(
                    "load", node,
                    mem_fact(src.uid, container.id, obj.id),
                    thread_edge=True,
                    edge=(src.uid, container.id, node.uid))
        return Derivation("load", node, None)

    def _record_mem(self, node: DUGNode, container: MemObject,
                    current: PTSet, vals, prov: Optional[Tuple]) -> None:
        rule, origin = prov if prov is not None else ("seed", node)
        assert self.provenance is not None
        for obj in vals:
            if obj in current:
                continue
            key = mem_fact(node.uid, container.id, obj.id)
            if key in self.provenance:
                continue
            derivation = self._derive_mem(rule, node, container, obj)
            self.provenance[key] = derivation
            self._emit_derive(key, derivation,
                              f"state({container.name})", obj)

    def _derive_mem(self, rule: str, node: DUGNode, container: MemObject,
                    obj: MemObject) -> Derivation:
        if rule in ("store-strong", "store-weak"):
            value = node.instr.value
            if isinstance(value, (Temp, Function)) and \
                    obj in self.value_pts(value):
                trigger = top_fact(value.id, obj.id) \
                    if isinstance(value, Temp) else None
                return Derivation(rule, node, trigger)
            # Weak update: the object survived from the incoming state.
        incoming = self._find_mem_trigger(node, container, obj)
        if incoming is not None:
            return Derivation(rule, node, incoming)
        if rule == "call-chi" and isinstance(node, CallChiNode) \
                and isinstance(node.site, Fork):
            # The abstract thread id written into the fork handle has
            # no def-use predecessor: it is a provenance root.
            return Derivation("fork-handle", node, None)
        return Derivation(rule, node, None)

    def _find_mem_trigger(self, node: DUGNode, container: MemObject,
                          obj: MemObject) -> Optional[Tuple]:
        empty = self.universe.empty
        for src in self.dug.mem_defs_of(node, container):
            if obj in self.mem.get((src.uid, container.id), empty):
                return mem_fact(src.uid, container.id, obj.id)
        return None

    def _emit_derive(self, key: Tuple, derivation: Derivation,
                     subject: str, obj: MemObject) -> None:
        origin = derivation.origin
        line = None
        if isinstance(origin, StmtNode) and origin.instr.line:
            line = origin.instr.line
        self.tracer.emit(
            "derive", kind=key[0], fact=list(key), subject=subject,
            obj=obj.name, obj_id=obj.id, rule=derivation.rule,
            origin=repr(origin) if origin is not None else None,
            line=line,
            trigger=list(derivation.trigger) if derivation.trigger else None,
            thread_edge=derivation.thread_edge)

    # -- metrics ------------------------------------------------------------

    def points_to_entries(self) -> int:
        """A memory-consumption proxy: the total number of (program
        point, variable) -> target facts the solver materialised.

        Counted as bitmask popcounts over the interned sets, so the
        number matches the pre-interning ``Set[MemObject]`` counting
        and Table 2 stays comparable (the *storage* is shared, the
        *fact count* is not deduplicated).
        """
        total = sum(len(s) for s in self.pts_top.values())
        total += sum(len(s) for s in self.mem.values())
        return total

    def flush_obs(self, obs: Observer) -> None:
        obs.count("solver.iterations", self.iterations)
        # Strong/weak tallies count store *evaluations*, so re-visits
        # of the same store under new facts count again — a measure of
        # work done, not of distinct update sites.
        obs.count("solver.strong_updates", self.strong_updates)
        obs.count("solver.weak_updates", self.weak_updates)
        obs.count("solver.node_revisits",
                  max(0, self.iterations - len(self.dug.nodes)))
        obs.gauge("solver.dug_nodes", len(self.dug.nodes))
        obs.gauge("solver.points_to_entries", self.points_to_entries())
        if self.provenance is not None:
            obs.gauge("trace.provenance_facts", len(self.provenance))
        ustats = self.universe.stats()
        obs.count("pts.set_references", int(ustats["set_references"]))
        obs.count("pts.union_cache_hits", int(ustats["union_cache_hits"]))
        obs.count("pts.intersect_cache_hits",
                  int(ustats["intersect_cache_hits"]))
        obs.gauge("pts.distinct_sets", int(ustats["distinct_sets"]))
        obs.gauge("pts.objects", int(ustats["objects"]))
        obs.gauge("pts.dedup_ratio", round(float(ustats["dedup_ratio"]), 3))
