"""The FSAM pipeline (paper Figure 2).

pre-analysis -> thread-oblivious def-use -> interleaving analysis ->
value-flow analysis -> lock analysis -> sparse flow-sensitive solve.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set

from repro.andersen import AndersenResult, run_andersen
from repro.cfg.icfg import ICFG
from repro.fsam.config import Deadline, FSAMConfig
from repro.fsam.reference import ReferenceSolver
from repro.fsam.solver import SparseSolver
from repro.ir.instructions import Load, Store
from repro.ir.module import Module
from repro.ir.values import MemObject, Temp, Value
from repro.memssa.builder import MemorySSABuilder, build_dug
from repro.memssa.dug import DUG
from repro.mt.locks import LockAnalysis
from repro.mt.mhp import CoarsePCGMhp, InterleavingAnalysis, MHPOracle
from repro.mt.threads import ThreadModel
from repro.mt.valueflow import ValueFlowStats, add_thread_aware_edges
from repro.obs import NULL_OBS, Observer
from repro.trace import NULL_TRACER, Tracer


class FSAMResult:
    """The analysis output: points-to queries plus statistics."""

    def __init__(self, module: Module, solver: SparseSolver,
                 andersen: AndersenResult, dug: DUG,
                 builder: MemorySSABuilder, model: Optional[ThreadModel],
                 mhp: Optional[MHPOracle],
                 vf_stats: Optional[ValueFlowStats],
                 phase_times: Dict[str, float],
                 obs: Observer = NULL_OBS,
                 tracer: Tracer = NULL_TRACER) -> None:
        self.module = module
        self.solver = solver
        self.andersen = andersen
        self.dug = dug
        self.builder = builder
        self.thread_model = model
        self.mhp = mhp
        self.vf_stats = vf_stats
        self.phase_times = phase_times
        self.obs = obs
        self.tracer = tracer
        # Filled by FSAM.run() when an incremental hook participated.
        self.incremental_stats: Optional[Dict[str, object]] = None
        # Lazily-built demand query engine, shared across query() calls
        # so solved slices accumulate (see repro.fsam.query).
        self._query_engine = None

    # -- points-to queries ------------------------------------------------

    def pts(self, value: Value):
        """The points-to set of a top-level value (an interned
        :class:`~repro.pts.PTSet`, duck-typed as a set of objects)."""
        return self.solver.value_pts(value)

    def pts_names(self, value: Value) -> Set[str]:
        """Readable form: names of pointed-to objects."""
        return {obj.name for obj in self.pts(value)}

    def load_pts_at_line(self, line: int):
        """pt() of the values read by loads on source *line* — the
        query the paper's examples pose (e.g. pt(c) for ``c = *p``)."""
        result = self.solver.universe.empty
        for instr in self.module.all_instructions():
            if isinstance(instr, Load) and instr.line == line:
                result = result | self.pts(instr.dst)
        return result

    def load_pts_names_at_line(self, line: int) -> Set[str]:
        return {obj.name for obj in self.load_pts_at_line(line)}

    def deref_pts_at_line(self, line: int):
        """pt() of true dereferences on *line*: loads whose pointer is
        itself the result of a load/phi/copy rather than a direct
        ``&variable`` — i.e. ``*p`` in the source, not the implicit
        load of a variable's own value."""
        addr_defined: Set[int] = set()
        from repro.ir.instructions import AddrOf
        for instr in self.module.all_instructions():
            if isinstance(instr, AddrOf):
                addr_defined.add(instr.dst.id)
        result = self.solver.universe.empty
        for instr in self.module.all_instructions():
            if isinstance(instr, Load) and instr.line == line:
                if isinstance(instr.ptr, Temp) and instr.ptr.id in addr_defined:
                    continue
                result = result | self.pts(instr.dst)
        return result

    def deref_pts_names_at_line(self, line: int) -> Set[str]:
        return {obj.name for obj in self.deref_pts_at_line(line)}

    def global_pts(self, name: str):
        """Everything ever stored into global *name* over the whole
        program (the union of its per-point states)."""
        obj = self.module.globals[name]
        result = self.solver.universe.empty
        for (_uid, obj_id), values in self.solver.mem.items():
            if obj_id == obj.id:
                result = result | values
        return result

    def global_pts_names(self, name: str) -> Set[str]:
        return {obj.name for obj in self.global_pts(name)}

    def query(self, name: str, line: Optional[int] = None,
              obj: bool = False):
        """Demand-driven points-to query (see :mod:`repro.fsam.query`):
        answer ``pt(name)`` — or, with *obj*, the accumulated memory
        state of global *name* — by solving only the backward DUG
        slice that can influence it. Answers are bit-identical to the
        whole-program fixpoint. The engine is shared across calls, so
        repeated queries reuse already-solved slices; under
        ``solver_mode="demand"`` this is the *only* way results are
        computed (the whole-program solve was skipped)."""
        engine = self._query_engine
        if engine is None:
            from repro.fsam.query import QueryEngine
            engine = QueryEngine(self.module, self.dug, self.builder,
                                 self.andersen, config=self.solver.config,
                                 obs=self.obs, tracer=self.tracer)
            self._query_engine = engine
        return engine.query(name, line=line, obj=obj)

    def store_out_at_line(self, line: int, obj: MemObject):
        """The o-state immediately after stores on source *line*."""
        result = self.solver.universe.empty
        for instr in self.module.all_instructions():
            if isinstance(instr, Store) and instr.line == line:
                node = self.dug.stmt_node(instr)
                result = result | self.solver.mem_state(node, obj)
        return result

    # -- canonical artifact views -----------------------------------------

    def pts_top_masks(self) -> Dict[int, int]:
        """``canonical temp index -> bitmask`` view of the top-level
        fixpoint. Canonical indices (see
        :func:`repro.ir.module.canonical_temp_index`) and universe-
        dense bitmasks are both deterministic functions of (source,
        config), so two runs of the same request — in any process, at
        any counter offset — produce the same map. This is the
        boundary the artifact cache serializes and the batch
        differential suite compares bit-for-bit."""
        from repro.ir.module import canonical_temp_index
        canon = canonical_temp_index(self.module)
        out: Dict[int, int] = {}
        for temp_id, pts in self.solver.pts_top.items():
            if not pts:
                continue
            if temp_id not in canon:
                raise ValueError(
                    f"points-to fact for temp id {temp_id} not reachable "
                    f"by the canonical module walk")
            out[canon[temp_id]] = pts.mask
        return out

    def mem_masks(self) -> Dict[str, int]:
        """``"<node index>:<object index>" -> bitmask`` view of the
        per-definition memory states (node index = position in
        ``dug.nodes`` creation order, object index = universe dense
        index; both deterministic)."""
        universe = self.solver.universe
        node_index = {node.uid: i for i, node in enumerate(self.dug.nodes)}
        out: Dict[str, int] = {}
        for (uid, obj_id), values in self.solver.mem.items():
            if not values:
                continue
            obj_idx = universe.index_of_id(obj_id)
            if uid not in node_index or obj_idx is None:
                raise ValueError(
                    f"memory state at ({uid}, {obj_id}) not reachable by "
                    f"the canonical DUG/universe numbering")
            out[f"{node_index[uid]}:{obj_idx}"] = values.mask
        return out

    # -- statistics ----------------------------------------------------------

    def points_to_entries(self) -> int:
        return self.solver.points_to_entries()

    def total_time(self) -> float:
        return sum(self.phase_times.values())

    def profile(self) -> Dict[str, object]:
        """The observability document for this run (schema
        ``repro.obs/1``: phase timers, counters, gauges)."""
        return self.obs.to_dict()

    def profile_json(self, indent: int = 2) -> str:
        return self.obs.to_json(indent=indent)

    # -- tracing & provenance -----------------------------------------------

    @property
    def provenance(self):
        """Fact key -> :class:`~repro.trace.Derivation` map recorded
        by the solver (None when tracing was off)."""
        return self.solver.provenance

    def trace_jsonl(self) -> str:
        """The run's event trace as ``repro.trace/1`` JSONL."""
        return self.tracer.to_jsonl()

    def stats(self) -> Dict[str, object]:
        return {
            "phase_times": dict(self.phase_times),
            "points_to_entries": self.points_to_entries(),
            "dug_nodes": len(self.dug.nodes),
            "dug_mem_edges": self.dug.num_mem_edges(),
            "thread_aware_edges": len(self.dug.thread_edges),
            "threads": len(self.thread_model.threads) if self.thread_model else 1,
            "solver_iterations": self.solver.iterations,
            "pts_universe": self.solver.universe.stats(),
            "counters": dict(self.obs.counters),
            "gauges": dict(self.obs.gauges),
        }


class FSAM:
    """Runs the full pipeline on a module.

    ``incremental`` is an optional hook for function-granular
    incremental analysis (see :mod:`repro.service.incremental`): a
    callable invoked after the value-flow phase with ``(module, dug,
    builder, andersen, config)``, returning either None or a plan
    object with a ``reuse`` attribute (an
    :class:`~repro.fsam.solver.IncrementalReuse` or None), a ``stats``
    dict, and a ``harvest(solver)`` method called after the fixpoint.
    When the plan carries a reuse, the sparse solve runs through
    :meth:`~repro.fsam.solver.SparseSolver.solve_incremental` instead
    of a cold :meth:`~repro.fsam.solver.SparseSolver.solve` — results
    are bit-identical either way.
    """

    def __init__(self, module: Module, config: Optional[FSAMConfig] = None,
                 obs: Optional[Observer] = None,
                 tracer: Optional[Tracer] = None,
                 incremental=None, on_preanalysis=None) -> None:
        self.module = module
        self.config = config or FSAMConfig()
        self.incremental = incremental
        # Optional progressive-results hook (the gateway's streaming
        # Andersen frame): called once, right after the pre-analysis
        # phase, with ``(module, andersen)``. Purely observational — it
        # must not mutate either argument.
        self.on_preanalysis = on_preanalysis
        # An explicit observer wins; otherwise config.profile decides
        # between a fresh Observer and the shared no-op one.
        if obs is not None:
            self.obs = obs
        elif self.config.profile:
            self.obs = Observer(name="fsam")
        else:
            self.obs = NULL_OBS
        # Same shape for the tracer: explicit instance wins, otherwise
        # config.trace picks between a fresh Tracer and the no-op one.
        if tracer is not None:
            self.tracer = tracer
        elif self.config.trace:
            self.tracer = Tracer(name="fsam")
        else:
            self.tracer = NULL_TRACER

    def run(self) -> FSAMResult:
        deadline = Deadline(self.config.time_budget)
        obs = self.obs
        tracer = self.tracer
        times: Dict[str, float] = {}

        def timed(name: str, thunk):
            # phase_times is kept alongside the observer's phase tree:
            # it must stay populated even with profiling off (NULL_OBS
            # records nothing), and harness consumers read it directly.
            start = time.perf_counter()
            with obs.phase(name):
                value = thunk()
            times[name] = time.perf_counter() - start
            deadline.check()
            return value

        andersen = timed("pre_analysis",
                         lambda: run_andersen(self.module, obs=obs))
        if self.on_preanalysis is not None:
            self.on_preanalysis(self.module, andersen)
        icfg = timed("icfg", lambda: ICFG(self.module, andersen.callgraph))
        dug, builder = timed("thread_oblivious_dug",
                             lambda: build_dug(self.module, andersen, obs=obs))
        model = timed("thread_model", lambda: ThreadModel(
            self.module, andersen, icfg,
            max_context_depth=self.config.max_context_depth))
        if self.config.interleaving:
            mhp: MHPOracle = timed(
                "interleaving",
                lambda: InterleavingAnalysis(model, tracer=tracer))
        else:
            mhp = timed("interleaving", lambda: CoarsePCGMhp(model))
        locks: Optional[LockAnalysis] = None
        if self.config.lock_analysis:
            locks = timed("lock_analysis",
                          lambda: LockAnalysis(model, andersen, dug, builder,
                                               tracer=tracer))
        vf_stats = timed("value_flow", lambda: add_thread_aware_edges(
            dug, builder, mhp, locks=locks,
            alias_filtering=self.config.value_flow, obs=obs, tracer=tracer))
        engine = ReferenceSolver \
            if self.config.solver_engine == "reference" else SparseSolver
        solver = engine(self.module, dug, builder, andersen,
                        config=self.config, deadline=deadline,
                        tracer=tracer)
        # Demand mode: the pipeline up to value flow is identical, but
        # the fixpoint is deferred to per-query backward slices
        # (FSAMResult.query). The reference engine has no sliced
        # variant, so it keeps its whole-program solve.
        demand = self.config.solver_mode == "demand" \
            and engine is SparseSolver
        plan = None
        if self.incremental is not None and engine is SparseSolver \
                and not demand:
            plan = timed("incremental_plan",
                         lambda: self.incremental(self.module, dug, builder,
                                                  andersen, self.config))
        if demand:
            times["sparse_solve"] = 0.0
        elif plan is not None and plan.reuse is not None:
            timed("sparse_solve",
                  lambda: solver.solve_incremental(plan.reuse))
        else:
            timed("sparse_solve", solver.solve)
        incremental_stats: Optional[Dict[str, object]] = None
        if plan is not None:
            timed("incremental_harvest", lambda: plan.harvest(solver))
            incremental_stats = dict(plan.stats)
            incremental_stats["seeded_nodes"] = solver.seeded_nodes
            incremental_stats["dug_nodes"] = len(dug.nodes)
            for key, value in incremental_stats.items():
                if isinstance(value, int):
                    obs.count(f"incremental.{key}", value)
        # The MHP and lock oracles are queried across phases (value
        # flow and downstream clients), so their tallies are flushed
        # once here rather than inside any one phase.
        mhp.flush_obs(obs)
        if locks is not None:
            locks.flush_obs(obs)
        solver.flush_obs(obs)
        result = FSAMResult(self.module, solver, andersen, dug, builder,
                            model, mhp, vf_stats, times, obs=obs,
                            tracer=tracer)
        result.incremental_stats = incremental_stats
        return result


def analyze_source(source: str, config: Optional[FSAMConfig] = None) -> FSAMResult:
    """Compile MiniC *source* and run FSAM on it (one-call helper)."""
    from repro.frontend import compile_source
    module = compile_source(source)
    return FSAM(module, config).run()
