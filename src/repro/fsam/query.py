"""Demand-driven points-to queries: backward DUG slicing.

The whole-program sparse solve computes every variable's fixpoint; a
*query* needs one. The demand engine answers ``pt(v)`` (or a global's
accumulated memory state) by:

1. **Slicing** — :meth:`repro.memssa.dug.DUG.upstream_closure` walks
   the combined value-flow graph *backwards* from the query roots
   (the temps named ``v``, or the defining nodes of the queried
   object): memory in-edges including [THREAD-VF] ones, top-level
   use->def, and the interprocedural copy graph against the flow.
   The result is predecessor-closed: everything a slice member's
   transfer function reads is itself in the slice.
2. **Solving the slice** — the existing delta engine runs over the
   sub-DUG only (:meth:`repro.fsam.solver.SparseSolver.solve_demand`):
   slice-local SCC ranks, a slice-filtered schedule and kernel plan,
   the same scalar/vectorized backends. Because the slice is
   predecessor-closed and transfer functions are union-monotone, the
   computed states on slice members are **bit-identical** to the
   whole-program fixpoint (pinned by ``tests/fsam/test_query.py``).
3. **Accumulating** — solved slices union into per-engine mask state.
   Each solve is an exact restriction of the one whole-program
   fixpoint, so unions of overlapping slices agree everywhere; a
   later query whose slice is already covered is answered with zero
   solver iterations (``source="warm"``).

When the configured engine is the reference oracle
(``solver_engine="reference"``) there is no sliced variant; the
engine bails to one cached whole-program reference solve
(``source="full"``) so differential callers still get answers.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.andersen import AndersenResult
from repro.fsam.config import FSAMConfig
from repro.fsam.solver import SparseSolver
from repro.ir.instructions import Store
from repro.ir.module import Module, canonical_temp_index
from repro.ir.values import MemObject, Temp
from repro.memssa.builder import MemorySSABuilder
from repro.memssa.dug import DUG, DUGNode, StmtNode
from repro.obs import NULL_OBS, Observer
from repro.pts import mask_to_hex
from repro.trace import NULL_TRACER, Tracer


def resolve_temps(module: Module, name: str,
                  line: Optional[int] = None) -> Dict[int, Temp]:
    """Top-level temps named *name*: function parameters plus
    instruction destinations (the same surface ``repro explain``
    resolves against). A *line* restricts to temps defined by an
    instruction on that source line — parameters, which have no
    defining line, only match unrestricted queries."""
    temps: Dict[int, Temp] = {}
    for fn in module.functions.values():
        if line is None:
            for param in fn.params:
                if param.name == name:
                    temps[param.id] = param
        for instr in fn.instructions():
            dst = getattr(instr, "dst", None)
            if isinstance(dst, Temp) and dst.name == name:
                if line is not None and instr.line != line:
                    continue
                temps[dst.id] = dst
    return temps


class QueryResult:
    """One demand query's answer plus its cost accounting.

    ``source`` says how the answer was produced: ``"solve"`` (a fresh
    slice solve), ``"warm"`` (the slice was already covered by this
    engine's accumulated state — zero solver iterations), or
    ``"full"`` (reference-engine bail to a whole-program solve).
    """

    __slots__ = ("name", "line", "obj_query", "mask", "universe",
                 "slice_nodes", "slice_temps", "slice_fraction",
                 "iterations", "source", "kernel_backend", "seconds",
                 "node_uids", "temp_ids")

    def __init__(self, name: str, line: Optional[int], obj_query: bool,
                 mask: int, universe, slice_nodes: int, slice_temps: int,
                 slice_fraction: float, iterations: int, source: str,
                 kernel_backend: Optional[str], seconds: float,
                 node_uids: Set[int], temp_ids: Set[int]) -> None:
        self.name = name
        self.line = line
        self.obj_query = obj_query
        self.mask = mask
        self.universe = universe
        self.slice_nodes = slice_nodes
        self.slice_temps = slice_temps
        self.slice_fraction = slice_fraction
        self.iterations = iterations
        self.source = source
        self.kernel_backend = kernel_backend
        self.seconds = seconds
        # The slice itself (raw uids / temp ids) — consumed by the
        # artifact layer for slice signatures, not serialized.
        self.node_uids = node_uids
        self.temp_ids = temp_ids

    def names(self) -> List[str]:
        """Sorted names of the pointed-to objects."""
        return sorted({obj.name
                       for obj in self.universe.iter_mask(self.mask)})

    def to_dict(self) -> Dict[str, object]:
        return {
            "var": self.name,
            "line": self.line,
            "obj": self.obj_query,
            "mask": mask_to_hex(self.mask),
            "names": self.names(),
            "slice_nodes": self.slice_nodes,
            "slice_temps": self.slice_temps,
            "slice_fraction": round(self.slice_fraction, 6),
            "iterations": self.iterations,
            "source": self.source,
            "kernel_backend": self.kernel_backend,
            "seconds": self.seconds,
        }


class QueryEngine:
    """Answers demand queries over one prepared pipeline.

    Construct it on the outputs of the pre-solve pipeline phases (the
    module, the value-flow-complete DUG, the memory-SSA builder, and
    the Andersen pre-analysis) — exactly what an
    :class:`~repro.fsam.analysis.FSAMResult` holds, whether or not a
    whole-program solve ran. The engine accumulates solved slices, so
    a sequence of queries on one engine converges toward (and never
    exceeds) the cost of one whole-program solve.
    """

    def __init__(self, module: Module, dug: DUG, builder: MemorySSABuilder,
                 andersen: AndersenResult,
                 config: Optional[FSAMConfig] = None,
                 obs: Observer = NULL_OBS,
                 tracer: Tracer = NULL_TRACER) -> None:
        self.module = module
        self.dug = dug
        self.builder = builder
        self.andersen = andersen
        self.universe = andersen.universe
        self.config = config or FSAMConfig()
        self.obs = obs
        self.tracer = tracer
        # Accumulated exact-fixpoint restrictions (see module doc).
        self._solved_uids: Set[int] = set()
        self._solved_temps: Set[int] = set()
        self._top_masks: Dict[int, int] = {}
        self._mem_masks: Dict[Tuple[int, int], int] = {}
        # obj.id -> defining DUG nodes; built on the first object query.
        self._defs_by_obj: Optional[Dict[int, List[DUGNode]]] = None
        self._node_index: Optional[Dict[int, int]] = None
        self._canon_temps: Optional[Dict[int, int]] = None
        # Cached whole-program reference solve for the bail path.
        self._full = None

    # -- root resolution ---------------------------------------------------

    def _obj_def_nodes(self, obj: MemObject) -> List[DUGNode]:
        """Every DUG node that defines a memory state of *obj*:
        chi-annotated stores plus the per-object pseudo-statements
        (memory phis, formal-in/out, call mu/chi). These are exactly
        the nodes the fixpoint keys ``(uid, obj.id)`` states under, so
        their union reproduces ``FSAMResult.global_pts``. Shared
        across engines via ``dug.schedule_cache``."""
        index = self._defs_by_obj
        if index is None:
            index = self.dug.schedule_cache.get("query_obj_defs")
        if index is None:
            index = {}
            chis = self.builder.chis
            for node in self.dug.nodes:
                node_obj = getattr(node, "obj", None)
                if node_obj is not None:
                    index.setdefault(node_obj.id, []).append(node)
                elif isinstance(node, StmtNode) \
                        and isinstance(node.instr, Store):
                    for o in chis.get(node.instr.id, ()):
                        index.setdefault(o.id, []).append(node)
            self.dug.schedule_cache["query_obj_defs"] = index
        self._defs_by_obj = index
        return index.get(obj.id, [])

    def _resolve_temps(self, name: str,
                       line: Optional[int]) -> Dict[int, Temp]:
        """:func:`resolve_temps` through a memoized name index — a
        pure function of the frozen module, shared across engines via
        ``dug.schedule_cache`` like the solver's demand statics — so
        each query costs a dict probe instead of a module walk.
        Parameters carry a ``None`` line and, as there, only match
        unrestricted queries."""
        index = self.dug.schedule_cache.get("query_name_index")
        if index is None:
            index = {}
            for fn in self.module.functions.values():
                for param in fn.params:
                    index.setdefault(param.name, []).append((param, None))
                for instr in fn.instructions():
                    dst = getattr(instr, "dst", None)
                    if isinstance(dst, Temp):
                        index.setdefault(dst.name, []).append(
                            (dst, instr.line))
            self.dug.schedule_cache["query_name_index"] = index
        temps: Dict[int, Temp] = {}
        for temp, def_line in index.get(name, ()):
            if line is not None and def_line != line:
                continue
            temps[temp.id] = temp
        return temps

    # -- slice signatures ----------------------------------------------------

    def slice_signature(self, node_uids: Set[int],
                        temp_ids: Set[int]) -> str:
        """A deterministic digest of a slice's extent, in canonical
        coordinates (DUG creation positions and canonical temp
        indices, both deterministic functions of (source, config)) —
        the slice half of the query artifact cache key."""
        node_index = self._node_index
        if node_index is None:
            node_index = self.dug.schedule_cache.get("query_node_index")
            if node_index is None:
                node_index = {node.uid: i
                              for i, node in enumerate(self.dug.nodes)}
                self.dug.schedule_cache["query_node_index"] = node_index
            self._node_index = node_index
        canon = self._canon_temps
        if canon is None:
            canon = self._canon_temps = canonical_temp_index(self.module)
        positions = sorted(node_index[uid] for uid in node_uids)
        temp_positions = []
        for tid in temp_ids:
            idx = canon.get(tid)
            if idx is None:
                raise ValueError(
                    f"slice temp id {tid} not reachable by the "
                    f"canonical module walk")
            temp_positions.append(idx)
        temp_positions.sort()
        blob = json.dumps([positions, temp_positions],
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- querying ------------------------------------------------------------

    def query(self, name: str, line: Optional[int] = None,
              obj: bool = False) -> QueryResult:
        """Answer ``pt(name)`` (or, with *obj*, the accumulated
        memory state of global *name* — ``global_pts`` semantics).
        Raises :class:`ValueError` when *name* resolves to nothing."""
        start = time.perf_counter()
        obs = self.obs
        obs.count("query.requests")
        target: Optional[MemObject] = None
        root_temps: Dict[int, Temp] = {}
        root_nodes: List[DUGNode] = []
        if obj:
            target = self.module.globals.get(name)
            if target is None:
                raise ValueError(f"unknown global {name!r}")
            root_nodes = self._obj_def_nodes(target)
        else:
            root_temps = self._resolve_temps(name, line)
            if not root_temps:
                where = f" at line {line}" if line is not None else ""
                raise ValueError(
                    f"no top-level variable named {name!r}{where}")
        if self.config.solver_engine == "reference":
            return self._query_full(name, line, obj, target, root_temps,
                                    start)
        node_uids, temp_ids = self.dug.upstream_closure(
            root_nodes, root_temps.keys())
        if node_uids <= self._solved_uids and \
                temp_ids <= self._solved_temps:
            obs.count("query.engine_hits")
            iterations = 0
            backend = None
            source = "warm"
        else:
            solver = SparseSolver(self.module, self.dug, self.builder,
                                  self.andersen, config=self.config,
                                  tracer=self.tracer)
            solver.solve_demand(node_uids, temp_ids)
            iterations = solver.iterations
            backend = solver.kernel_backend
            source = "solve"
            top = self._top_masks
            for tid, pts in solver.pts_top.items():
                top[tid] = pts.mask
            memm = self._mem_masks
            for key, pts in solver.mem.items():
                memm[key] = pts.mask
            self._solved_uids |= node_uids
            self._solved_temps |= temp_ids
            obs.count("query.solve_iterations", iterations)
        mask = 0
        if obj:
            oid = target.id
            memm = self._mem_masks
            for node in root_nodes:
                mask |= memm.get((node.uid, oid), 0)
        else:
            top = self._top_masks
            for tid in root_temps:
                mask |= top.get(tid, 0)
        fraction = len(node_uids) / (len(self.dug.nodes) or 1)
        seconds = time.perf_counter() - start
        obs.count("query.slice_nodes", len(node_uids))
        obs.count("query.slice_temps", len(temp_ids))
        obs.observe("query.slice_fraction", fraction)
        obs.observe("query.seconds", seconds)
        return QueryResult(
            name=name, line=line, obj_query=obj, mask=mask,
            universe=self.universe, slice_nodes=len(node_uids),
            slice_temps=len(temp_ids), slice_fraction=fraction,
            iterations=iterations, source=source, kernel_backend=backend,
            seconds=seconds, node_uids=node_uids, temp_ids=temp_ids)

    def _query_full(self, name: str, line: Optional[int], obj: bool,
                    target: Optional[MemObject],
                    root_temps: Dict[int, Temp],
                    start: float) -> QueryResult:
        """The bail path: the reference oracle has no sliced variant,
        so solve the whole program once (cached) and read the answer
        off the full fixpoint."""
        solver = self._full
        iterations = 0
        if solver is None:
            from repro.fsam.reference import ReferenceSolver
            solver = ReferenceSolver(self.module, self.dug, self.builder,
                                     self.andersen, config=self.config,
                                     tracer=self.tracer)
            solver.solve()
            self._full = solver
            iterations = solver.iterations
            self.obs.count("query.solve_iterations", iterations)
        else:
            self.obs.count("query.engine_hits")
        mask = 0
        if obj:
            for (_uid, obj_id), values in solver.mem.items():
                if obj_id == target.id:
                    mask |= values.mask
        else:
            for tid in root_temps:
                pts = solver.pts_top.get(tid)
                if pts is not None:
                    mask |= pts.mask
        n_nodes = len(self.dug.nodes)
        seconds = time.perf_counter() - start
        self.obs.count("query.slice_nodes", n_nodes)
        self.obs.observe("query.slice_fraction", 1.0)
        self.obs.observe("query.seconds", seconds)
        return QueryResult(
            name=name, line=line, obj_query=obj, mask=mask,
            universe=self.universe, slice_nodes=n_nodes, slice_temps=0,
            slice_fraction=1.0, iterations=iterations, source="full",
            kernel_backend=None, seconds=seconds,
            node_uids={node.uid for node in self.dug.nodes},
            temp_ids=set())
