"""FSAM configuration and time budgeting."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional


class AnalysisTimeout(Exception):
    """Raised when an analysis exceeds its time budget (the paper's
    OOT condition in Table 2)."""


class Deadline:
    """A wall-clock budget checked inside solver loops."""

    def __init__(self, seconds: Optional[float] = None) -> None:
        self.seconds = seconds
        self.start = time.perf_counter()

    def check(self) -> None:
        if self.seconds is not None and time.perf_counter() - self.start > self.seconds:
            raise AnalysisTimeout(f"exceeded {self.seconds:.0f}s budget")

    def elapsed(self) -> float:
        return time.perf_counter() - self.start


@dataclass
class FSAMConfig:
    """Phase toggles and solver policy.

    The three booleans mirror the paper's Figure 12 ablations:

    - ``interleaving=False``    -> No-Interleaving (coarse PCG-style MHP)
    - ``value_flow=False``      -> No-Value-Flow (AS(*p,*q) disregarded)
    - ``lock_analysis=False``   -> No-Lock (no span filtering)
    """

    interleaving: bool = True
    value_flow: bool = True
    lock_analysis: bool = True
    # Literal paper Figure 10: a strong update at any store whose
    # pointer resolves to one singleton. Sound here because THREAD-VF
    # adds direct def-use edges from concurrent writers to every MHP
    # reader, and join chis merge the spawner's in-flight defs weakly.
    # Set False for a belt-and-braces mode that demotes stores
    # participating in MHP interference on the contested object.
    strong_updates_at_interfering_stores: bool = True
    # Wall-clock budget for the whole analysis (None = unbounded).
    time_budget: Optional[float] = None
    # Collect observability data (phase timers, counters, gauges) in a
    # repro.obs.Observer during the run. Cheap enough to default on;
    # set False to run every hook against the shared no-op observer.
    profile: bool = True
    # Record derivation provenance and typed events in a
    # repro.trace.Tracer during the run (why each points-to fact
    # holds, per-pair [THREAD-VF] verdicts, lock-span decisions).
    # Unlike profile this defaults off: provenance touches the
    # solver's per-fact hot path, and the overhead benchmark's budget
    # is stated for the trace-off configuration.
    trace: bool = False
    # Calling-context depth for the thread interference analyses.
    # None = full context-sensitivity (the paper's setting, recursion
    # collapsed); an integer k caps the callsite stack — coarser MHP
    # and lock spans, but cheaper on deep call chains.
    max_context_depth: Optional[int] = None
    # Which sparse solver engine to run: "delta" (default; delta
    # propagation over an SCC-condensed topological worklist) or
    # "reference" (the retained naive FIFO recompute-from-preds
    # engine). Both compute the same fixpoint — the reference engine
    # exists as the differential-testing oracle and for benchmarking
    # the optimisation itself.
    solver_engine: str = "delta"
    # Batched propagation backend for the delta engine's merge-only
    # subgraph: "auto" (numpy when importable, else the pure-Python
    # big-int backend), "numpy", "python", or "none" (scalar delta
    # path only — the differential-test baseline). Ignored by the
    # reference engine; forced off when trace=True because provenance
    # needs the scalar per-visit path (counted as a kernel fallback).
    kernel: str = "auto"
    # "full" runs the whole-program sparse solve inside FSAM.run();
    # "demand" prepares the pipeline (pre-analysis, memory SSA, thread
    # model, value flow) but defers solving to per-query backward DUG
    # slices (FSAMResult.query / repro query). Scheduling policy like
    # solver_engine/kernel: answers on queried variables are
    # bit-identical to the whole-program fixpoint, so it stays out of
    # cache_key_dict().
    solver_mode: str = "full"

    def to_dict(self) -> dict:
        """Every field as a JSON-able dict (the wire form used by the
        batch service to ship configs across process boundaries)."""
        return {
            "interleaving": self.interleaving,
            "value_flow": self.value_flow,
            "lock_analysis": self.lock_analysis,
            "strong_updates_at_interfering_stores": self.strong_updates_at_interfering_stores,
            "time_budget": self.time_budget,
            "profile": self.profile,
            "trace": self.trace,
            "max_context_depth": self.max_context_depth,
            "solver_engine": self.solver_engine,
            "kernel": self.kernel,
            "solver_mode": self.solver_mode,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FSAMConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected so a
        typo in a batch spec fails loudly instead of silently running
        the default config."""
        known = set(cls().to_dict())
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FSAMConfig field(s): {sorted(unknown)}")
        return cls(**data)

    def cache_key_dict(self) -> dict:
        """The subset of fields that determine the analysis *fixpoint*
        — the config part of the artifact cache key. Excluded on
        purpose: ``time_budget`` (changes whether the run finishes,
        not what it computes; degraded results are never cached),
        ``profile``/``trace`` (observability side channels), and
        ``solver_engine``/``kernel`` (every engine and kernel backend
        computes the same fixpoint, pinned by the differential
        suite)."""
        return {
            "interleaving": self.interleaving,
            "value_flow": self.value_flow,
            "lock_analysis": self.lock_analysis,
            "strong_updates_at_interfering_stores": self.strong_updates_at_interfering_stores,
            "max_context_depth": self.max_context_depth,
        }

    def ablated(self, phase: str) -> "FSAMConfig":
        """A copy with one named phase turned off ('interleaving',
        'value_flow', or 'lock_analysis')."""
        if phase not in ("interleaving", "value_flow", "lock_analysis"):
            raise ValueError(f"unknown phase {phase!r}")
        kwargs = self.to_dict()
        kwargs[phase] = False
        return FSAMConfig(**kwargs)
