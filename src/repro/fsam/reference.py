"""The retained naive sparse solver — the differential-testing oracle.

This is the pre-delta-propagation engine, kept verbatim in spirit: a
FIFO worklist seeded with **every** DUG node, where each visit of a
load/phi/chi/formal re-unions *all* predecessor states from scratch
via ``_in_values``. It is deliberately simple — recompute-from-preds
over union-monotone transfer functions is obviously a fixpoint
computation — and so serves as the executable specification the
optimised :class:`~repro.fsam.solver.SparseSolver` is differentially
pinned against (``tests/fsam/test_differential.py``): both engines
must produce bit-identical ``pts_top``/``mem`` maps and identical
strong/weak store classifications.

It intentionally supports no tracing/provenance (``provenance`` is
always None): provenance recording is a property of the production
engine, not of the semantics being pinned.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set, Tuple

from repro.andersen import AndersenResult
from repro.andersen.fields import derive_field
from repro.fsam.config import Deadline, FSAMConfig
from repro.ir.instructions import AddrOf, Copy, Fork, Gep, Load, Phi, Store
from repro.ir.module import Module
from repro.ir.values import Constant, Function, MemObject, Temp, Value
from repro.memssa.builder import MemorySSABuilder
from repro.memssa.dug import (
    CallChiNode, CallMuNode, DUG, DUGNode, FormalInNode, FormalOutNode,
    MemPhiNode, StmtNode,
)
from repro.obs import Observer
from repro.trace import NULL_TRACER, Tracer


class ReferenceSolver:
    """FIFO seed-everything recompute-from-preds solver over the DUG.

    Exposes the same result surface as the production solver
    (``pts_top``, ``mem``, ``value_pts``, ``mem_state``, counters,
    ``flush_obs``) so :class:`~repro.fsam.analysis.FSAMResult` can wrap
    either engine — ``FSAMConfig(solver_engine="reference")`` selects
    this one.
    """

    def __init__(self, module: Module, dug: DUG, builder: MemorySSABuilder,
                 andersen: AndersenResult, config: Optional[FSAMConfig] = None,
                 deadline: Optional[Deadline] = None,
                 tracer: Tracer = NULL_TRACER) -> None:
        self.module = module
        self.dug = dug
        self.builder = builder
        self.andersen = andersen
        self.universe = andersen.universe
        self.config = config or FSAMConfig()
        self.deadline = deadline
        # Accepted for interface parity; the reference engine records
        # no provenance (use the delta engine for `repro explain`).
        self.tracer = tracer
        self.provenance = None
        self.pts_top: Dict[int, object] = {}
        self.mem: Dict[Tuple[int, int], object] = {}
        self._work: deque = deque()
        self._queued: Set[int] = set()
        self._visited: Set[int] = set()
        self.iterations = 0
        self.strong_updates = 0
        self.weak_updates = 0
        self.delta_propagations = 0   # N/A for this engine; kept for parity
        self.seeded_nodes = 0
        self.scc_count = 0

    # -- state access ----------------------------------------------------

    def top(self, temp: Temp):
        return self.pts_top.get(temp.id, self.universe.empty)

    def value_pts(self, value: Optional[Value]):
        if value is None or isinstance(value, Constant):
            return self.universe.empty
        if isinstance(value, Function):
            return self.universe.singleton(value.mem_object)
        if isinstance(value, Temp):
            return self.pts_top.get(value.id, self.universe.empty)
        return self.universe.empty

    def mem_state(self, node: DUGNode, obj: MemObject):
        return self.mem.get((node.uid, obj.id), self.universe.empty)

    def _in_values(self, node: DUGNode, obj: MemObject):
        empty = self.universe.empty
        result = empty
        for src in self.dug.mem_defs_of(node, obj):
            result = result | self.mem.get((src.uid, obj.id), empty)
        return result

    # -- state updates ------------------------------------------------------

    def _push(self, node: DUGNode) -> None:
        if node.uid not in self._queued:
            self._queued.add(node.uid)
            self._work.append(node)

    def _set_top(self, temp: Temp, values) -> None:
        empty = self.universe.empty
        pending = [(temp, values)]
        while pending:
            target, vals = pending.pop()
            current = self.pts_top.get(target.id, empty)
            merged = current | vals
            if merged is current:
                continue
            self.pts_top[target.id] = merged
            for user in self.dug.top_users(target):
                self._push(user)
            for src, dst in self.dug.copies_from(target):
                pending.append((dst, self.value_pts(src)))

    def _set_mem(self, node: DUGNode, obj: MemObject, values) -> None:
        key = (node.uid, obj.id)
        current = self.mem.get(key, self.universe.empty)
        merged = current | values
        if merged is current:
            return
        self.mem[key] = merged
        for out_obj, dst in self.dug.mem_out(node):
            if out_obj.id == obj.id:
                self._push(dst)

    # -- solving ---------------------------------------------------------------

    def solve(self) -> None:
        for src, dst in self.dug.top_copies:
            self._set_top(dst, self.value_pts(src))
        for node in self.dug.nodes:
            self._push(node)
        self.seeded_nodes = len(self.dug.nodes)
        while self._work:
            if self.deadline is not None and self.iterations % 256 == 0:
                self.deadline.check()
            self.iterations += 1
            node = self._work.popleft()
            self._queued.discard(node.uid)
            self._visited.add(node.uid)
            self._eval(node)

    def _eval(self, node: DUGNode) -> None:
        if isinstance(node, StmtNode):
            self._eval_stmt(node)
        elif isinstance(node, (MemPhiNode, FormalInNode, FormalOutNode,
                               CallMuNode)):
            obj = node.obj
            self._set_mem(node, obj, self._in_values(node, obj))
        elif isinstance(node, CallChiNode):
            self._eval_call_chi(node)

    def _eval_call_chi(self, node: CallChiNode) -> None:
        obj = node.obj
        values = self._in_values(node, obj)
        site = node.site
        if isinstance(site, Fork) and site.handle_ptr is not None:
            if obj in self.value_pts(site.handle_ptr):
                tid = self.andersen.thread_objects.get(site.id)
                if tid is not None:
                    values = values | self.universe.singleton(tid)
        self._set_mem(node, obj, values)

    def _eval_stmt(self, node: StmtNode) -> None:
        instr = node.instr
        if isinstance(instr, AddrOf):
            self._set_top(instr.dst, {instr.obj})
        elif isinstance(instr, Copy):
            self._set_top(instr.dst, self.value_pts(instr.src))
        elif isinstance(instr, Phi):
            merged = self.universe.empty
            for value, _block in instr.incomings:
                merged = merged | self.value_pts(value)
            self._set_top(instr.dst, merged)
        elif isinstance(instr, Gep):
            derived = self.universe.make(
                derive_field(obj, instr.field_index)
                for obj in self.value_pts(instr.base))
            self._set_top(instr.dst, derived)
        elif isinstance(instr, Load):
            empty = self.universe.empty
            objs = self.value_pts(instr.ptr)
            values = empty
            for obj in objs & self.builder.mus.get(instr.id, empty):
                values = values | self._in_values(node, obj)
            for obj, src in self.dug.thread_in_edges(node):
                values = values | self.mem.get((src.uid, obj.id), empty)
            self._set_top(instr.dst, values)
        elif isinstance(instr, Store):
            self._eval_store(node, instr)

    def _eval_store(self, node: StmtNode, instr: Store) -> None:
        targets = self.value_pts(instr.ptr)
        stored = self.value_pts(instr.value)
        for obj in self.builder.chis.get(instr.id, self.universe.empty):
            if not targets:
                continue  # kill(s, p) = A for an empty pointer
            if obj not in targets:
                self._set_mem(node, obj, self._in_values(node, obj))
                continue
            strong = len(targets) == 1 and obj.is_singleton
            if strong and not self.config.strong_updates_at_interfering_stores:
                strong = not self.dug.is_interfering(node, obj)
            if strong:
                self.strong_updates += 1
                self._set_mem(node, obj, stored)
            else:
                self.weak_updates += 1
                self._set_mem(node, obj, stored | self._in_values(node, obj))

    # -- metrics ------------------------------------------------------------

    def points_to_entries(self) -> int:
        total = sum(len(s) for s in self.pts_top.values())
        total += sum(len(s) for s in self.mem.values())
        return total

    def flush_obs(self, obs: Observer) -> None:
        obs.count("solver.iterations", self.iterations)
        obs.count("solver.strong_updates", self.strong_updates)
        obs.count("solver.weak_updates", self.weak_updates)
        obs.count("solver.node_revisits",
                  max(0, self.iterations - len(self._visited)))
        obs.gauge("solver.dug_nodes", len(self.dug.nodes))
        obs.gauge("solver.points_to_entries", self.points_to_entries())
        obs.gauge("solver.engine_reference", 1)
        ustats = self.universe.stats()
        obs.count("pts.set_references", int(ustats["set_references"]))
        obs.count("pts.union_cache_hits", int(ustats["union_cache_hits"]))
        obs.count("pts.intersect_cache_hits",
                  int(ustats["intersect_cache_hits"]))
        obs.gauge("pts.distinct_sets", int(ustats["distinct_sets"]))
        obs.gauge("pts.objects", int(ustats["objects"]))
        obs.gauge("pts.dedup_ratio", round(float(ustats["dedup_ratio"]), 3))
