"""FSAM: the sparse flow-sensitive pointer analysis for multithreaded
C programs (the paper's primary contribution).

Typical use::

    from repro.frontend import compile_source
    from repro.fsam import FSAM, FSAMConfig

    module = compile_source(minic_source)
    result = FSAM(module, FSAMConfig()).run()
    result.pts(some_temp)          # points-to set of a top-level var
    result.load_pts_at_line(42)    # pt() of loads on a source line
"""

from repro.fsam.config import AnalysisTimeout, Deadline, FSAMConfig
from repro.fsam.solver import SparseSolver
from repro.fsam.analysis import FSAM, FSAMResult, analyze_source
from repro.fsam.explain import (
    Provenance, derivation_chain, explain_at_line, explain_fact,
    explain_load, render_derivation,
)

__all__ = [
    "FSAM", "FSAMConfig", "FSAMResult", "SparseSolver",
    "AnalysisTimeout", "Deadline", "analyze_source",
    "Provenance", "explain_load", "explain_at_line",
    "derivation_chain", "explain_fact", "render_derivation",
]
