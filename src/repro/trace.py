"""Structured event tracing and derivation provenance (``repro.trace``).

Where :mod:`repro.obs` answers "how much / how long?", this module
answers "*why*?": it records **derivations**, not counts. A
:class:`Tracer` collects typed events from the pipeline:

- ``derive``    — the sparse solver first introduced a points-to fact
  (a ``(variable, object)`` or ``(memory state, object)`` pair), with
  the rule that fired, the node it fired at, and the *trigger fact*
  the new fact was derived from;
- ``vf.pair``   — a [THREAD-VF] candidate pair verdict from the
  value-flow phase: ``mhp-refuted``, ``lock-filtered`` (with the
  witnessing lock), or ``edge-added`` (with the MHP witness threads);
- ``mhp.seed`` / ``mhp.spawn`` / ``mhp.kill`` — the interleaving
  analysis' fork/join/sibling classifications per thread;
- ``lock.span`` / ``lock.head`` / ``lock.tail`` — lock-release span
  construction and the Definition 4/5 head/tail decisions.

The trigger-fact links form a provenance graph over facts: following
them from any fact walks a derivation chain down to an ``AddrOf``
root (surfaced by ``repro explain``, see :mod:`repro.fsam.explain`).

Mirroring ``Observer``/``NULL_OBS``, a shared no-op
:data:`NULL_TRACER` is the default everywhere, so hot paths may call
the tracer unconditionally and tracing off costs nothing (guarded by
``benchmarks/test_observability_overhead.py``). Events live in a
bounded in-memory ring buffer (oldest dropped first) and export as
JSONL (schema ``repro.trace/1``, checked by :func:`validate_trace`).

This module is a leaf like ``repro.obs``: apart from the shared
:mod:`repro.schemas` constants module it imports nothing from the
rest of ``repro``, so every stage can depend on it without cycles.
"""

from __future__ import annotations

import io
import json
from collections import deque
from typing import (
    Dict, Iterable, List, NamedTuple, Optional, TextIO, Tuple,
)

from repro.schemas import TRACE_SCHEMA

#: Default ring-buffer capacity: large enough for every derivation of
#: the bundled workloads, small enough to bound memory on runaways.
DEFAULT_CAPACITY = 1 << 16


# -- fact keys --------------------------------------------------------------
#
# Provenance is keyed by hashable *fact keys* built from stable ids
# (never from Python object identity, which GC address reuse breaks —
# the PR 1 bug class):
#
#   ("top", var_id, obj_id)             — obj ∈ pt(top-level var)
#   ("mem", node_uid, container_id, obj_id)
#                                       — obj ∈ the container's memory
#                                         state defined at a DUG node


def top_fact(var_id: int, obj_id: int) -> Tuple[str, int, int]:
    """Fact key for ``obj ∈ pt(var)`` of a top-level variable."""
    return ("top", var_id, obj_id)


def mem_fact(node_uid: int, container_id: int, obj_id: int
             ) -> Tuple[str, int, int, int]:
    """Fact key for ``obj ∈ state(container)`` defined at a DUG node."""
    return ("mem", node_uid, container_id, obj_id)


class Derivation(NamedTuple):
    """Why a fact first became true (first-introduction semantics).

    ``rule`` names the transfer rule that fired (``addr``, ``copy``,
    ``phi``, ``gep``, ``load``, ``store-strong``, ``store-weak``,
    ``store-through``, ``mem-phi``, ``formal-in``, ``formal-out``,
    ``call-mu``, ``call-chi``, ``fork-handle``, ...); ``origin`` is
    the DUG node / value the rule fired at; ``trigger`` is the fact
    key the new fact was derived from (None for roots such as
    ``AddrOf``); ``thread_edge`` marks derivations that travelled a
    [THREAD-VF] edge, with ``edge`` holding the
    ``(src_uid, obj_id, dst_uid)`` key for the DUG's admission-verdict
    lookup."""

    rule: str
    origin: Optional[object]
    trigger: Optional[Tuple]
    thread_edge: bool = False
    edge: Optional[Tuple[int, int, int]] = None

    @property
    def is_root(self) -> bool:
        return self.trigger is None


# -- the tracer -------------------------------------------------------------


class Tracer:
    """Collects typed events for one pipeline run into a ring buffer.

    Events are plain dicts with an ``ev`` kind, a monotonically
    increasing ``seq``, and kind-specific JSON-able fields. When the
    buffer is full the *oldest* events are dropped (the header of the
    JSONL export records how many), so a bounded tracer always keeps
    the most recent — and usually most interesting — window.
    """

    enabled = True

    def __init__(self, name: str = "",
                 capacity: Optional[int] = DEFAULT_CAPACITY,
                 sink: Optional[TextIO] = None) -> None:
        self.name = name
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        self.emitted = 0
        # Optional streaming sink: every event is also written as one
        # JSONL line immediately (never dropped), for traces larger
        # than any reasonable ring buffer.
        self.sink = sink

    def emit(self, ev: str, **fields: object) -> None:
        """Record one event of kind *ev* (fields must be JSON-able)."""
        self.emitted += 1
        fields["ev"] = ev
        fields["seq"] = self.emitted
        self.events.append(fields)
        if self.sink is not None:
            json.dump(fields, self.sink, sort_keys=True)
            self.sink.write("\n")

    @property
    def dropped(self) -> int:
        return self.emitted - len(self.events)

    def kinds(self) -> Dict[str, int]:
        """Retained event counts by kind (a quick summary view)."""
        out: Dict[str, int] = {}
        for event in self.events:
            kind = str(event["ev"])
            out[kind] = out.get(kind, 0) + 1
        return out

    # -- export -----------------------------------------------------------

    def header(self) -> Dict[str, object]:
        return {
            "schema": TRACE_SCHEMA,
            "name": self.name,
            "events": len(self.events),
            "emitted": self.emitted,
            "dropped": self.dropped,
        }

    def write_jsonl(self, fp: TextIO) -> None:
        """One header line, then one line per retained event."""
        json.dump(self.header(), fp, sort_keys=True)
        fp.write("\n")
        for event in self.events:
            json.dump(event, fp, sort_keys=True)
            fp.write("\n")

    def to_jsonl(self) -> str:
        buffer = io.StringIO()
        self.write_jsonl(buffer)
        return buffer.getvalue()


class NullTracer(Tracer):
    """A no-op tracer: emitting is free, so instrumented call sites
    never need an ``if tracing`` guard of their own for plain emits
    (sites that must *compute* event fields should still guard on
    ``tracer.enabled``)."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(name="", capacity=0)

    def emit(self, ev: str, **fields: object) -> None:
        pass


#: Shared no-op instance; stages default to it when no tracer is given.
NULL_TRACER = NullTracer()


# -- schema -----------------------------------------------------------------


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(f"invalid trace document: {message}")


def validate_trace(lines: Iterable[Dict[str, object]]) -> int:
    """Check a parsed JSONL trace (header dict + event dicts) against
    the ``repro.trace/1`` schema; returns the event count.

    Raises :class:`ValueError` with a pointed message on the first
    violation (same contract as ``repro.obs.validate_profile`` — no
    external jsonschema dependency)."""
    iterator = iter(lines)
    header = next(iterator, None)
    _check(isinstance(header, dict), "missing header line")
    assert isinstance(header, dict)
    _check(header.get("schema") == TRACE_SCHEMA,
           f"schema is {header.get('schema')!r}, expected {TRACE_SCHEMA!r}")
    _check(isinstance(header.get("name"), str), "header name is not a string")
    for key in ("events", "emitted", "dropped"):
        value = header.get(key)
        _check(isinstance(value, int) and value >= 0,
               f"header {key} is not a non-negative integer")
    _check(header["emitted"] >= header["events"],  # type: ignore[operator]
           "header emitted < events")
    count = 0
    last_seq = 0
    for event in iterator:
        _check(isinstance(event, dict), f"event {count} is not an object")
        assert isinstance(event, dict)
        kind = event.get("ev")
        _check(isinstance(kind, str) and kind != "",
               f"event {count} lacks an ev kind")
        seq = event.get("seq")
        _check(isinstance(seq, int) and seq > last_seq,
               f"event {count} seq {seq!r} is not increasing")
        last_seq = seq  # type: ignore[assignment]
        count += 1
    _check(count == header["events"],
           f"header says {header['events']} events, found {count}")
    return count


def validate_trace_jsonl(text: str) -> int:
    """Parse and validate a JSONL trace document; returns event count."""
    lines = []
    for i, raw in enumerate(text.splitlines()):
        if not raw.strip():
            continue
        try:
            lines.append(json.loads(raw))
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"invalid trace document: line {i + 1} is not JSON ({exc})")
    return validate_trace(lines)


# -- Chrome-trace / Perfetto export ----------------------------------------


def profile_to_chrome(doc: Dict[str, object]) -> Dict[str, object]:
    """Render a ``repro.obs/1`` profile's phase tree as Chrome
    trace-event JSON (loadable in ``chrome://tracing`` / Perfetto).

    The obs schema stores durations, not start timestamps, so phases
    are laid out sequentially: each phase starts where its previous
    sibling ended, children start at their parent's start. That
    matches how the pipeline actually runs (phases are serial) and
    renders as the familiar nested flame chart.
    """
    events: List[Dict[str, object]] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
        "args": {"name": str(doc.get("name") or "repro")},
    }]

    def emit(phases: List[Dict[str, object]], start_us: float) -> None:
        cursor = start_us
        for phase in phases:
            duration_us = float(phase["seconds"]) * 1e6  # type: ignore[arg-type]
            events.append({
                "name": str(phase["name"]),
                "ph": "X", "cat": "phase", "pid": 1, "tid": 1,
                "ts": round(cursor, 3), "dur": round(duration_us, 3),
                "args": {
                    "peak_traced_kb": phase.get("peak_traced_kb", 0.0),
                    "rss_kb": phase.get("rss_kb"),
                },
            })
            emit(phase.get("children", []), cursor)  # type: ignore[arg-type]
            cursor += duration_us

    emit(doc.get("phases", []), 0.0)  # type: ignore[arg-type]
    return {"traceEvents": events, "displayTimeUnit": "ms"}
