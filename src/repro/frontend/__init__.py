"""AST-to-IR lowering and SSA construction.

``compile_source`` is the one-call pipeline used throughout the
project: MiniC text -> AST -> naive IR (every local in memory) ->
mem2reg promotion (the paper's compile setup enables LLVM's mem2reg,
Section 4.1) -> verified partial-SSA module.
"""

from repro.frontend.lower import Lowerer, lower_program
from repro.frontend.mem2reg import promote_to_ssa
from repro.frontend.simplify import simplify_module

from repro.ir.verify import verify_module
from repro.minic.parser import parse


def compile_source(source: str, name: str = "module", mem2reg: bool = True,
                   simplify: bool = False):
    """Compile MiniC *source* into a verified partial-SSA module.

    ``simplify=True`` additionally runs the cleanup passes (copy
    propagation, constant-branch folding, block merging, DCE); the
    analyses are unaffected semantically but run on a smaller IR.
    """
    program = parse(source)
    module = lower_program(program, name=name)
    if mem2reg:
        promote_to_ssa(module)
    if simplify:
        simplify_module(module)
    verify_module(module)
    return module


__all__ = ["compile_source", "lower_program", "Lowerer", "promote_to_ssa",
           "simplify_module"]
