"""IR simplification passes.

The paper's pipeline leans on LLVM running its standard cleanups
before the analysis (mem2reg explicitly; instcombine/simplifycfg
implicitly at -O levels). This module provides the equivalents our
frontend benefits from:

- **copy propagation** — SSA copies (and single-source phis) are
  forwarded to their uses and deleted;
- **constant branch folding** — ``br 1, a, b`` becomes ``jmp a`` and
  unreachable blocks are pruned;
- **block merging** — straight-line block chains collapse;
- **dead code elimination** — pure instructions whose results are
  unused disappear.

All passes preserve the program's pointer behaviour: the test suite
checks FSAM produces identical points-to sets with and without
simplification.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cfg.cfg import CFG
from repro.ir.instructions import (
    AddrOf, BinOp, Branch, Call, Copy, Fork, Gep, Instruction, Jump, Load,
    Phi, Ret, Store,
)
from repro.ir.module import BasicBlock, Module
from repro.ir.values import Constant, Function, Temp, Value

# Instructions that may be removed when their result is unused.
_PURE = (AddrOf, Copy, Phi, Gep, BinOp, Load)


def simplify_module(module: Module, max_rounds: int = 8) -> Dict[str, int]:
    """Simplify every function; returns pass statistics."""
    stats = {"copies_propagated": 0, "instructions_removed": 0,
             "branches_folded": 0, "blocks_merged": 0, "blocks_removed": 0}
    for fn in module.functions.values():
        if fn.is_declaration or not fn.blocks:
            continue
        for _ in range(max_rounds):
            changed = 0
            changed += _propagate_copies(fn, stats)
            changed += _fold_constant_branches(fn, stats)
            changed += _prune_unreachable(fn, stats)
            changed += _merge_blocks(fn, stats)
            changed += _eliminate_dead(fn, stats)
            if not changed:
                break
    return stats


# -- copy propagation ---------------------------------------------------


def _propagate_copies(fn: Function, stats: Dict[str, int]) -> int:
    replacement: Dict[int, Value] = {}
    to_delete: Set[int] = set()
    for instr in fn.instructions():
        if isinstance(instr, Copy):
            replacement[instr.dst.id] = instr.src
            to_delete.add(instr.id)
        elif isinstance(instr, Phi):
            sources = {(_value_key(v)) for v, _b in instr.incomings}
            if len(sources) == 1:
                replacement[instr.dst.id] = instr.incomings[0][0]
                to_delete.add(instr.id)
    if not replacement:
        return 0

    def resolve(value: Value) -> Value:
        seen = set()
        while isinstance(value, Temp) and value.id in replacement:
            if value.id in seen:
                break
            seen.add(value.id)
            value = replacement[value.id]
        return value

    from repro.frontend.mem2reg import _rewrite_operands
    count = 0
    for block in fn.blocks:
        kept: List[Instruction] = []
        for instr in block.instructions:
            if instr.id in to_delete:
                count += 1
                continue
            _rewrite_operands(instr, resolve)
            kept.append(instr)
        block.instructions = kept
    stats["copies_propagated"] += count
    return count


def _value_key(value: Value):
    if isinstance(value, Constant):
        return ("const", value.value, value.is_null)
    return ("id", id(value))


# -- constant branches ---------------------------------------------------


def _fold_constant_branches(fn: Function, stats: Dict[str, int]) -> int:
    count = 0
    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, Branch) and isinstance(term.cond, Constant):
            taken = term.then_block if (term.cond.value != 0
                                        and not term.cond.is_null) else term.else_block
            dropped = term.else_block if taken is term.then_block else term.then_block
            jump = Jump(taken)
            jump.line = term.line
            jump.block = block
            block.instructions[-1] = jump
            _remove_phi_incomings(dropped, block)
            count += 1
    stats["branches_folded"] += count
    return count


def _remove_phi_incomings(block: BasicBlock, pred: BasicBlock) -> None:
    for instr in block.instructions:
        if isinstance(instr, Phi):
            instr.incomings = [(v, b) for v, b in instr.incomings if b is not pred]
        else:
            break


# -- unreachable blocks ----------------------------------------------------


def _prune_unreachable(fn: Function, stats: Dict[str, int]) -> int:
    reachable = CFG(fn).reachable_blocks()
    dead = [b for b in fn.blocks if b not in reachable]
    if not dead:
        return 0
    for dead_block in dead:
        for live in fn.blocks:
            if live in reachable:
                _remove_phi_incomings(live, dead_block)
    fn.blocks = [b for b in fn.blocks if b in reachable]
    stats["blocks_removed"] += len(dead)
    return len(dead)


# -- block merging ------------------------------------------------------------


def _merge_blocks(fn: Function, stats: Dict[str, int]) -> int:
    count = 0
    changed = True
    while changed:
        changed = False
        cfg = CFG(fn)
        for block in list(fn.blocks):
            term = block.terminator
            if not isinstance(term, Jump):
                continue
            target = term.target
            if target is block or target is fn.entry:
                continue
            if len(cfg.predecessors(target)) != 1:
                continue
            if any(isinstance(i, Phi) for i in target.instructions):
                # Single-pred phis were handled by copy propagation.
                continue
            # Splice the target into this block.
            block.instructions.pop()  # the jump
            for instr in target.instructions:
                block.append(instr)
            fn.blocks.remove(target)
            _retarget_phis(fn, target, block)
            count += 1
            changed = True
            break
    stats["blocks_merged"] += count
    return count


def _retarget_phis(fn: Function, old: BasicBlock, new: BasicBlock) -> None:
    for block in fn.blocks:
        for instr in block.instructions:
            if isinstance(instr, Phi):
                instr.incomings = [(v, new if b is old else b)
                                   for v, b in instr.incomings]
            else:
                break


# -- dead code ---------------------------------------------------------------


def _eliminate_dead(fn: Function, stats: Dict[str, int]) -> int:
    used: Set[int] = set()
    for instr in fn.instructions():
        for op in instr.operands():
            if isinstance(op, Temp):
                used.add(op.id)
    count = 0
    for block in fn.blocks:
        kept: List[Instruction] = []
        for instr in block.instructions:
            if isinstance(instr, _PURE):
                dst = instr.defined_temp()
                if dst is not None and dst.id not in used:
                    count += 1
                    continue
            kept.append(instr)
        block.instructions = kept
    stats["instructions_removed"] += count
    return count
