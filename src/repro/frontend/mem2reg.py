"""mem2reg: promote non-escaping scalar stack slots to SSA temps.

This reproduces the compile setup of the paper (Section 4.1: "the
compiler option mem2reg is turned on to promote memory into
registers"), and is what creates the top-level/address-taken split of
partial SSA: a local whose address never escapes becomes a top-level
SSA variable; everything else remains an address-taken object in A.

Classic SSA construction: phi insertion at iterated dominance
frontiers, then renaming along a dominator-tree walk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.cfg.cfg import CFG
from repro.graphs.dominance import iterated_dominance_frontier
from repro.ir.instructions import AddrOf, Instruction, Load, Phi, Store
from repro.ir.module import BasicBlock, Module
from repro.ir.types import IntType, PointerType, ThreadType, Type
from repro.ir.values import Constant, Function, MemObject, ObjectKind, Temp, Value


def _promotable_type(ty: Type) -> bool:
    """Scalars only: ints, pointers, thread ids. Structs, arrays, and
    mutexes stay in memory."""
    return isinstance(ty, (IntType, PointerType, ThreadType))


def _undef_for(ty: Type) -> Constant:
    """The value of a promoted variable before any store reaches it."""
    if isinstance(ty, PointerType):
        return Constant.null(ty)
    return Constant(0, ty)


def promote_to_ssa(module: Module) -> None:
    """Run mem2reg on every function of *module* (in place)."""
    for fn in module.functions.values():
        if not fn.is_declaration and fn.blocks:
            _promote_function(fn)


def _promote_function(fn: Function) -> None:
    cfg = CFG(fn)

    # 1. Find promotable objects: stack scalars whose address temps are
    #    used only as the pointer operand of loads and stores.
    addr_temps: Dict[Temp, MemObject] = {}
    candidates: Dict[MemObject, bool] = {}
    for instr in fn.instructions():
        if isinstance(instr, AddrOf):
            obj = instr.obj
            if obj.kind is ObjectKind.STACK and _promotable_type(obj.type) and not obj.is_array:
                addr_temps[instr.dst] = obj
                candidates.setdefault(obj, True)

    for instr in fn.instructions():
        for op in instr.operands():
            if not isinstance(op, Temp) or op not in addr_temps:
                continue
            obj = addr_temps[op]
            ok = (isinstance(instr, Load) and instr.ptr is op) or (
                isinstance(instr, Store) and instr.ptr is op and instr.value is not op)
            if not ok:
                candidates[obj] = False

    # Insertion-ordered (dict order), not a set: phi instructions are
    # created while iterating this, and their order decides temp
    # numbering — which must be identical across runs and processes
    # for the artifact cache's canonical indices.
    promoted = [obj for obj, ok in candidates.items() if ok]
    if not promoted:
        return

    # 2. Phi insertion at iterated dominance frontiers of def blocks.
    def_blocks: Dict[MemObject, Set[BasicBlock]] = {obj: set() for obj in promoted}
    for block in fn.blocks:
        for instr in block.instructions:
            if isinstance(instr, Store) and instr.ptr in addr_temps:
                obj = addr_temps[instr.ptr]
                if obj in promoted:
                    def_blocks[obj].add(block)

    phi_var: Dict[Phi, MemObject] = {}
    counters: Dict[MemObject, int] = {obj: 0 for obj in promoted}
    for obj in promoted:
        # Sort the IDF (a set of address-hashed blocks) by block id —
        # ids follow deterministic creation order, so phi placement
        # order is stable across runs and processes.
        for block in sorted(
                iterated_dominance_frontier(cfg.frontiers, def_blocks[obj]),
                key=lambda b: b.id):
            counters[obj] += 1
            phi = Phi(Temp(f"{obj.name}.phi{counters[obj]}", obj.type))
            block.insert(0, phi)
            phi_var[phi] = obj

    # 3. Renaming along the dominator tree.
    stacks: Dict[MemObject, List[Value]] = {obj: [] for obj in promoted}
    replacement: Dict[Temp, Value] = {}
    to_delete: Set[Instruction] = set()

    def current(obj: MemObject) -> Value:
        return stacks[obj][-1] if stacks[obj] else _undef_for(obj.type)

    def process(block: BasicBlock) -> List[MemObject]:
        pushed: List[MemObject] = []
        for instr in block.instructions:
            if isinstance(instr, Phi) and instr in phi_var:
                obj = phi_var[instr]
                stacks[obj].append(instr.dst)
                pushed.append(obj)
            elif isinstance(instr, AddrOf) and instr.dst in addr_temps:
                if addr_temps[instr.dst] in promoted:
                    to_delete.add(instr)
            elif isinstance(instr, Load) and instr.ptr in addr_temps:
                obj = addr_temps[instr.ptr]
                if obj in promoted:
                    replacement[instr.dst] = current(obj)
                    to_delete.add(instr)
            elif isinstance(instr, Store) and instr.ptr in addr_temps:
                obj = addr_temps[instr.ptr]
                if obj in promoted:
                    stacks[obj].append(instr.value)
                    pushed.append(obj)
                    to_delete.add(instr)
        for succ in cfg.successors(block):
            for instr in succ.instructions:
                if not isinstance(instr, Phi):
                    break
                if instr in phi_var:
                    instr.add_incoming(current(phi_var[instr]), block)
        return pushed

    # Iterative dominator-tree walk (deep trees exceed the recursion
    # limit on generated workloads).
    stack: List[Tuple[BasicBlock, Optional[List[MemObject]], int]] = [(cfg.entry, None, 0)]
    while stack:
        block, pushed, child_idx = stack.pop()
        if pushed is None:
            pushed = process(block)
        children = cfg.domtree.children(block)
        if child_idx < len(children):
            stack.append((block, pushed, child_idx + 1))
            stack.append((children[child_idx], None, 0))
        else:
            for obj in reversed(pushed):
                stacks[obj].pop()

    # 4. Resolve replacement chains (a load's value may itself be a
    #    deleted load's dst) and rewrite every remaining operand.
    def resolve(value: Value) -> Value:
        seen = set()
        while isinstance(value, Temp) and value in replacement:
            if value in seen:  # pragma: no cover - cycles are impossible
                break
            seen.add(value)
            value = replacement[value]
        return value

    for block in fn.blocks:
        block.instructions = [i for i in block.instructions if i not in to_delete]
        for instr in block.instructions:
            _rewrite_operands(instr, resolve)


def _rewrite_operands(instr: Instruction, resolve) -> None:
    """Apply *resolve* to every operand slot of *instr*."""
    from repro.ir.instructions import (
        BarrierInit, BarrierWait, BinOp, Branch, Call, Copy, Fork, Gep, Join,
        Load, Lock, Phi, Ret, Signal, Store, Unlock, Wait,
    )

    if isinstance(instr, Copy):
        instr.src = resolve(instr.src)
    elif isinstance(instr, Phi):
        instr.incomings = [(resolve(v), b) for v, b in instr.incomings]
    elif isinstance(instr, Load):
        instr.ptr = resolve(instr.ptr)
    elif isinstance(instr, Store):
        instr.ptr = resolve(instr.ptr)
        instr.value = resolve(instr.value)
    elif isinstance(instr, Gep):
        instr.base = resolve(instr.base)
    elif isinstance(instr, Call):
        instr.callee = resolve(instr.callee)
        instr.args = [resolve(a) for a in instr.args]
    elif isinstance(instr, Ret):
        if instr.value is not None:
            instr.value = resolve(instr.value)
    elif isinstance(instr, Fork):
        if instr.handle_ptr is not None:
            instr.handle_ptr = resolve(instr.handle_ptr)
        instr.routine = resolve(instr.routine)
        if instr.arg is not None:
            instr.arg = resolve(instr.arg)
    elif isinstance(instr, Join):
        instr.handle = resolve(instr.handle)
    elif isinstance(instr, (Lock, Unlock, BarrierWait)):
        instr.ptr = resolve(instr.ptr)
    elif isinstance(instr, Wait):
        instr.cond_ptr = resolve(instr.cond_ptr)
        instr.mutex_ptr = resolve(instr.mutex_ptr)
    elif isinstance(instr, Signal):
        instr.cond_ptr = resolve(instr.cond_ptr)
    elif isinstance(instr, BarrierInit):
        instr.ptr = resolve(instr.ptr)
        instr.count = resolve(instr.count)
    elif isinstance(instr, Branch):
        instr.cond = resolve(instr.cond)
    elif isinstance(instr, BinOp):
        instr.lhs = resolve(instr.lhs)
        instr.rhs = resolve(instr.rhs)
