"""AST -> IR lowering.

Produces *naive* IR: every local variable lives in a stack object and
is accessed through explicit AddrOf/Load/Store. The subsequent
mem2reg pass (:mod:`repro.frontend.mem2reg`) promotes non-address-
taken scalars into SSA temps, yielding the partial-SSA form the paper
analyses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.builder import IRBuilder
from repro.ir.instructions import Branch, Jump, Ret
from repro.ir.module import BasicBlock, Module
from repro.ir.types import (
    ArrayType, BarrierType, CondType, FunctionType, IntType, LockType,
    PointerType, StructType, ThreadType, Type, VoidType, INT, VOID,
)
from repro.ir.values import Constant, Function, MemObject, Temp, Value
from repro.minic import ast
from repro.minic.errors import SemanticError

_THREAD = ThreadType()
_LOCK = LockType()


class _LocalSlot:
    """A local variable's backing stack object."""

    def __init__(self, obj: MemObject, ty: Type) -> None:
        self.obj = obj
        self.type = ty


class Lowerer:
    """Lowers one :class:`repro.minic.ast.Program` to a Module."""

    def __init__(self, program: ast.Program, name: str = "module") -> None:
        self.program = program
        self.module = Module(name)
        self.builder = IRBuilder(self.module)
        self.structs: Dict[str, StructType] = {}
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, MemObject] = {}
        self.locals: Dict[str, _LocalSlot] = {}
        # Stack of (break_target, continue_target) blocks.
        self._loop_stack: List[Tuple[BasicBlock, BasicBlock]] = []
        self._recursive_fns: set = set()

    # -- type resolution ------------------------------------------------

    def resolve_type(self, spec: ast.TypeSpec) -> Type:
        base: Type
        if spec.base == "int":
            base = INT
        elif spec.base == "void":
            base = VOID
        elif spec.base == "thread_t":
            base = _THREAD
        elif spec.base == "mutex_t":
            base = _LOCK
        elif spec.base == "cond_t":
            base = CondType()
        elif spec.base == "barrier_t":
            base = BarrierType()
        elif spec.base.startswith("struct "):
            sname = spec.base[len("struct "):]
            if sname not in self.structs:
                raise SemanticError(f"unknown struct {sname}", spec.line)
            base = self.structs[sname]
        else:
            raise SemanticError(f"unknown type {spec.base}", spec.line)
        ty = base
        for _ in range(spec.pointers):
            ty = PointerType(ty)
        return ty

    # -- program --------------------------------------------------------

    def lower(self) -> Module:
        # Pass 1: declare struct shells (so recursive structs resolve).
        for sdef in self.program.structs:
            if sdef.name in self.structs:
                raise SemanticError(f"duplicate struct {sdef.name}", sdef.line)
            self.structs[sdef.name] = StructType(sdef.name)
        for sdef in self.program.structs:
            struct = self.structs[sdef.name]
            fields = []
            for f in sdef.fields:
                fty = self.resolve_type(f.type_spec)
                if f.array_size is not None:
                    fty = ArrayType(fty, f.array_size)
                fields.append((f.name, fty))
            struct.fields = fields
            self.module.structs[sdef.name] = struct

        # Pass 2: globals.
        self._global_inits = []
        for gdecl in self.program.globals:
            ty = self.resolve_type(gdecl.type_spec)
            is_array = gdecl.array_size is not None
            if is_array:
                ty = ArrayType(ty, gdecl.array_size)
            obj = self.module.add_global(gdecl.name, ty, is_array=is_array)
            self.globals[gdecl.name] = obj
            if gdecl.init is not None:
                self._check_constant_init(gdecl.init)
                self._global_inits.append((obj, gdecl.init, gdecl.line))

        # Pass 3: declare all function signatures (forward references).
        for fdef in self.program.functions:
            ret = self.resolve_type(fdef.ret_type)
            params = [self.resolve_type(p.type_spec) for p in fdef.params]
            fn = Function(fdef.name, FunctionType(ret, params))
            for i, p in enumerate(fdef.params):
                fn.params.append(Temp(f"{fdef.name}.{p.name}", params[i]))
            self.module.add_function(fn)
            self.functions[fdef.name] = fn

        self._recursive_fns = _recursive_functions(self.program, set(self.functions))

        # Pass 4: bodies.
        for fdef in self.program.functions:
            self._lower_function(fdef)
        return self.module

    # -- functions ------------------------------------------------------

    def _lower_function(self, fdef: ast.FunctionDef) -> None:
        fn = self.functions[fdef.name]
        self.locals = {}
        self._loop_stack = []
        entry = BasicBlock(f"{fdef.name}.entry", fn)
        fn.blocks.append(entry)
        self.builder.position(fn, entry)

        in_rec = fdef.name in self._recursive_fns
        # Global initialisers execute "before main": lower them as
        # stores at main's entry.
        if fdef.name == "main":
            for obj, init, line in self._global_inits:
                value = self._rvalue(init)
                addr = self.builder.addr_of(obj, hint=f"a.{obj.name}", line=line)
                self.builder.store(addr, value, line=line)

        # Spill parameters into named stack slots so the body can take
        # their address; mem2reg will promote the non-escaping ones.
        for param_decl, param_temp in zip(fdef.params, fn.params):
            ty = self.resolve_type(param_decl.type_spec)
            slot = self._declare_local(param_decl.name, ty, None, in_rec, param_decl.line)
            addr = self.builder.addr_of(slot.obj, hint=f"a.{param_decl.name}")
            self.builder.store(addr, param_temp, line=param_decl.line)

        self._lower_stmts(fdef.body)

        # Implicit return, and a terminator for any dangling block.
        self._seal_blocks(fn)
        _prune_unreachable(fn)

    def _seal_blocks(self, fn: Function) -> None:
        ret_ty = fn.type.ret if isinstance(fn.type, FunctionType) else VOID
        for block in fn.blocks:
            if block.terminator is None:
                self.builder.position(fn, block)
                if isinstance(ret_ty, VoidType):
                    self.builder.ret()
                else:
                    self.builder.ret(Constant(0, ret_ty) if not ret_ty.is_pointer()
                                     else Constant.null(ret_ty))

    def _check_constant_init(self, expr: ast.Expr) -> None:
        """Global initialisers must be C-style constants: a number,
        null, &global, or a function name."""
        if isinstance(expr, (ast.NumberExpr, ast.NullExpr)):
            return
        if isinstance(expr, ast.NameExpr):
            # A function name (a constant address). Globals-by-value
            # are not constant in C.
            if any(f.name == expr.name for f in self.program.functions):
                return
            raise SemanticError(
                f"global initialiser must be constant, got variable {expr.name}",
                expr.line)
        if isinstance(expr, ast.UnaryExpr) and expr.op == "&" \
                and isinstance(expr.operand, ast.NameExpr):
            return  # &global — resolved during lowering
        raise SemanticError("global initialiser must be a constant expression",
                            expr.line)

    def _declare_local(self, name: str, ty: Type, array_size: Optional[int],
                       in_recursion: bool, line: int) -> _LocalSlot:
        if name in self.locals:
            raise SemanticError(f"duplicate local {name}", line)
        is_array = array_size is not None
        obj_ty = ArrayType(ty, array_size) if is_array else ty
        fn_name = self.builder.function.name
        obj = MemObject(f"{fn_name}::{name}", obj_ty, kind=_stack_kind(),
                        alloc_fn=fn_name, is_array=is_array, in_recursion=in_recursion)
        self.module.register_object(obj)
        slot = _LocalSlot(obj, obj_ty)
        self.locals[name] = slot
        return slot

    # -- statements -----------------------------------------------------

    def _lower_stmts(self, stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.DeclStmt):
            self._lower_decl(stmt)
        elif isinstance(stmt, ast.AssignStmt):
            self._lower_assign(stmt.target, stmt.value, stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            self._rvalue(stmt.expr, result_used=False)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            value = self._rvalue(stmt.value) if stmt.value is not None else None
            self.builder.ret(value, line=stmt.line)
            self._start_dead_block()
        elif isinstance(stmt, ast.BreakStmt):
            if not self._loop_stack:
                raise SemanticError("break outside loop", stmt.line)
            self.builder.jump(self._loop_stack[-1][0], line=stmt.line)
            self._start_dead_block()
        elif isinstance(stmt, ast.ContinueStmt):
            if not self._loop_stack:
                raise SemanticError("continue outside loop", stmt.line)
            self.builder.jump(self._loop_stack[-1][1], line=stmt.line)
            self._start_dead_block()
        elif isinstance(stmt, ast.ForkStmt):
            self._lower_fork(stmt)
        elif isinstance(stmt, ast.JoinStmt):
            handle = self._as_temp(self._rvalue(stmt.handle))
            self.builder.join(handle, line=stmt.line)
        elif isinstance(stmt, ast.LockStmt):
            self.builder.lock(self._as_temp(self._rvalue(stmt.lock_expr)), line=stmt.line)
        elif isinstance(stmt, ast.UnlockStmt):
            self.builder.unlock(self._as_temp(self._rvalue(stmt.lock_expr)), line=stmt.line)
        elif isinstance(stmt, ast.WaitStmt):
            cv = self._as_temp(self._rvalue(stmt.cond_expr))
            mu = self._as_temp(self._rvalue(stmt.mutex_expr))
            self.builder.wait(cv, mu, line=stmt.line)
        elif isinstance(stmt, ast.SignalStmt):
            cv = self._as_temp(self._rvalue(stmt.cond_expr))
            self.builder.signal(cv, broadcast=stmt.broadcast, line=stmt.line)
        elif isinstance(stmt, ast.BarrierInitStmt):
            ptr = self._as_temp(self._rvalue(stmt.barrier_expr))
            count = self._rvalue(stmt.count)
            self.builder.barrier_init(ptr, count, line=stmt.line)
        elif isinstance(stmt, ast.BarrierWaitStmt):
            ptr = self._as_temp(self._rvalue(stmt.barrier_expr))
            self.builder.barrier_wait(ptr, line=stmt.line)
        else:
            raise SemanticError(f"cannot lower statement {type(stmt).__name__}", stmt.line)

    def _lower_decl(self, stmt: ast.DeclStmt) -> None:
        ty = self.resolve_type(stmt.type_spec)
        in_rec = self.builder.function.name in self._recursive_fns
        slot = self._declare_local(stmt.name, ty, stmt.array_size, in_rec, stmt.line)
        if stmt.init is not None:
            value = self._rvalue(stmt.init)
            addr = self.builder.addr_of(slot.obj, hint=f"a.{stmt.name}", line=stmt.line)
            self.builder.store(addr, value, line=stmt.line)

    def _lower_assign(self, target: ast.Expr, value: ast.Expr, line: int) -> None:
        addr = self._lvalue(target)
        val = self._rvalue(value)
        self.builder.store(addr, val, line=line)

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        cond = self._rvalue(stmt.cond)
        then_block = self.builder.new_block("if.then")
        else_block = self.builder.new_block("if.else")
        merge = self.builder.new_block("if.end")
        self.builder.branch(cond, then_block, else_block, line=stmt.line)
        self.builder.position_at(then_block)
        self._lower_stmts(stmt.then_body)
        if self.builder.block.terminator is None:
            self.builder.jump(merge)
        self.builder.position_at(else_block)
        self._lower_stmts(stmt.else_body)
        if self.builder.block.terminator is None:
            self.builder.jump(merge)
        self.builder.position_at(merge)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        header = self.builder.new_block("while.head")
        body = self.builder.new_block("while.body")
        exit_block = self.builder.new_block("while.end")
        self.builder.jump(header, line=stmt.line)
        self.builder.position_at(header)
        cond = self._rvalue(stmt.cond)
        self.builder.branch(cond, body, exit_block, line=stmt.line)
        self.builder.position_at(body)
        self._loop_stack.append((exit_block, header))
        self._lower_stmts(stmt.body)
        self._loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.jump(header)
        self.builder.position_at(exit_block)

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        header = self.builder.new_block("for.head")
        body = self.builder.new_block("for.body")
        step_block = self.builder.new_block("for.step")
        exit_block = self.builder.new_block("for.end")
        self.builder.jump(header, line=stmt.line)
        self.builder.position_at(header)
        if stmt.cond is not None:
            cond = self._rvalue(stmt.cond)
            self.builder.branch(cond, body, exit_block, line=stmt.line)
        else:
            self.builder.jump(body)
        self.builder.position_at(body)
        self._loop_stack.append((exit_block, step_block))
        self._lower_stmts(stmt.body)
        self._loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.jump(step_block)
        self.builder.position_at(step_block)
        if stmt.step is not None:
            self._lower_stmt(stmt.step)
        self.builder.jump(header)
        self.builder.position_at(exit_block)

    def _lower_fork(self, stmt: ast.ForkStmt) -> None:
        handle_ptr: Optional[Temp] = None
        if stmt.handle is not None:
            handle_ptr = self._as_temp(self._rvalue(stmt.handle))
        routine = self._rvalue(stmt.routine)
        arg = self._rvalue(stmt.arg) if stmt.arg is not None else None
        self.builder.fork(handle_ptr, routine, arg, line=stmt.line)

    def _start_dead_block(self) -> None:
        dead = self.builder.new_block("dead")
        self.builder.position_at(dead)

    # -- expressions ----------------------------------------------------

    def _as_temp(self, value: Value) -> Temp:
        """Materialise *value* as a Temp (constants get copied)."""
        if isinstance(value, Temp):
            return value
        return self.builder.copy(value)

    def _lvalue(self, expr: ast.Expr) -> Temp:
        """Lower *expr* as an lvalue; returns the address temp."""
        if isinstance(expr, ast.NameExpr):
            slot = self.locals.get(expr.name)
            if slot is not None:
                return self.builder.addr_of(slot.obj, hint=f"a.{expr.name}", line=expr.line)
            gobj = self.globals.get(expr.name)
            if gobj is not None:
                return self.builder.addr_of(gobj, hint=f"a.{expr.name}", line=expr.line)
            raise SemanticError(f"unknown variable {expr.name}", expr.line)
        if isinstance(expr, ast.UnaryExpr) and expr.op == "*":
            return self._as_temp(self._rvalue(expr.operand))
        if isinstance(expr, ast.MemberExpr):
            return self._member_address(expr)
        if isinstance(expr, ast.IndexExpr):
            return self._element_address(expr)
        raise SemanticError(f"expression is not assignable", expr.line)

    def _member_address(self, expr: ast.MemberExpr) -> Temp:
        if expr.arrow:
            base_ptr = self._as_temp(self._rvalue(expr.base))
            base_ty = base_ptr.type.pointee if isinstance(base_ptr.type, PointerType) else None
        else:
            base_ptr = self._lvalue(expr.base)
            base_ty = base_ptr.type.pointee if isinstance(base_ptr.type, PointerType) else None
        # Arrays of structs: a[i].f — the element address is typed as
        # the element struct.
        if isinstance(base_ty, ArrayType):
            base_ty = base_ty.element
        if not isinstance(base_ty, StructType):
            raise SemanticError(
                f"member access {expr.field_name!r} on non-struct value", expr.line)
        try:
            index = base_ty.field_index(expr.field_name)
        except KeyError as exc:
            raise SemanticError(str(exc), expr.line) from None
        field_ty = base_ty.field_type(index)
        return self.builder.gep(base_ptr, index, field_ty, line=expr.line)

    def _element_address(self, expr: ast.IndexExpr) -> Temp:
        # Array variable or array-typed struct field: index its object
        # (decay to the address); pointer: index its target.
        base: Temp
        elem_ty: Type = INT
        if (isinstance(expr.base, ast.NameExpr) and self._name_is_array(expr.base.name)) \
                or isinstance(expr.base, ast.MemberExpr):
            base = self._lvalue(expr.base)
            pointee = base.type.pointee if isinstance(base.type, PointerType) else None
            if isinstance(pointee, ArrayType):
                elem_ty = pointee.element
            elif pointee is not None:
                # A pointer-typed field indexed like an array: load the
                # pointer value first.
                base = self.builder.load(base, line=expr.line)
                inner = base.type.pointee if isinstance(base.type, PointerType) else None
                elem_ty = inner if inner is not None else INT
        else:
            base = self._as_temp(self._rvalue(expr.base))
            pointee = base.type.pointee if isinstance(base.type, PointerType) else None
            if isinstance(pointee, ArrayType):
                elem_ty = pointee.element
            elif pointee is not None:
                elem_ty = pointee
        self._rvalue(expr.index, result_used=False)  # evaluate for effects
        return self.builder.gep(base, None, elem_ty, line=expr.line)

    def _name_is_array(self, name: str) -> bool:
        slot = self.locals.get(name)
        if slot is not None:
            return isinstance(slot.type, ArrayType)
        gobj = self.globals.get(name)
        return gobj is not None and isinstance(gobj.type, ArrayType)

    def _rvalue(self, expr: ast.Expr, result_used: bool = True) -> Value:
        """Lower *expr* as an rvalue."""
        if isinstance(expr, ast.NumberExpr):
            return Constant(expr.value, INT)
        if isinstance(expr, ast.NullExpr):
            return Constant.null(PointerType(VOID))
        if isinstance(expr, ast.NameExpr):
            return self._name_rvalue(expr)
        if isinstance(expr, ast.UnaryExpr):
            if expr.op == "&":
                return self._lvalue(expr.operand)
            if expr.op == "*":
                ptr = self._as_temp(self._rvalue(expr.operand))
                return self.builder.load(ptr, line=expr.line)
            operand = self._rvalue(expr.operand)
            return self.builder.binop(expr.op, Constant(0, INT), operand, line=expr.line)
        if isinstance(expr, ast.BinaryExpr):
            lhs = self._rvalue(expr.lhs)
            rhs = self._rvalue(expr.rhs)
            return self.builder.binop(expr.op, lhs, rhs, line=expr.line)
        if isinstance(expr, (ast.MemberExpr, ast.IndexExpr)):
            addr = self._lvalue(expr)
            return self.builder.load(addr, line=expr.line)
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr, result_used)
        if isinstance(expr, ast.MallocExpr):
            ty = self.resolve_type(expr.alloc_type)
            obj = self.builder.heap_object(f"malloc.l{expr.line}", ty)
            return self.builder.addr_of(obj, hint="m", line=expr.line)
        raise SemanticError(f"cannot lower expression {type(expr).__name__}", expr.line)

    def _name_rvalue(self, expr: ast.NameExpr) -> Value:
        fn = self.functions.get(expr.name)
        if fn is not None:
            return fn
        slot = self.locals.get(expr.name)
        if slot is not None:
            if isinstance(slot.type, ArrayType):
                # Array-to-pointer decay: the value is the address.
                return self.builder.addr_of(slot.obj, hint=f"a.{expr.name}", line=expr.line)
            addr = self.builder.addr_of(slot.obj, hint=f"a.{expr.name}", line=expr.line)
            return self.builder.load(addr, hint=f"v.{expr.name}", line=expr.line)
        gobj = self.globals.get(expr.name)
        if gobj is not None:
            if isinstance(gobj.type, ArrayType):
                return self.builder.addr_of(gobj, hint=f"a.{expr.name}", line=expr.line)
            addr = self.builder.addr_of(gobj, hint=f"a.{expr.name}", line=expr.line)
            return self.builder.load(addr, hint=f"v.{expr.name}", line=expr.line)
        raise SemanticError(f"unknown name {expr.name}", expr.line)

    def _lower_call(self, expr: ast.CallExpr, result_used: bool) -> Value:
        args = [self._rvalue(a) for a in expr.args]
        callee: Value
        ret_ty: Type = INT
        if isinstance(expr.callee, ast.NameExpr) and expr.callee.name in self.functions:
            callee = self.functions[expr.callee.name]
            ret_ty = callee.type.ret
        else:
            callee = self._as_temp(self._rvalue(expr.callee))
            if isinstance(callee.type, PointerType) and isinstance(callee.type.pointee, FunctionType):
                ret_ty = callee.type.pointee.ret
            elif isinstance(callee.type, FunctionType):
                ret_ty = callee.type.ret
        dst = None
        if result_used and not isinstance(ret_ty, VoidType):
            dst = self.builder.temp(ret_ty, "r")
        self.builder.call(callee, args, dst=dst, line=expr.line)
        return dst if dst is not None else Constant(0, INT)


def _stack_kind():
    from repro.ir.values import ObjectKind
    return ObjectKind.STACK


def _prune_unreachable(fn: Function) -> None:
    """Drop blocks unreachable from the entry (dead-code landing pads
    created after return/break/continue)."""
    from repro.cfg.cfg import CFG
    reachable = CFG(fn).reachable_blocks()
    fn.blocks = [b for b in fn.blocks if b in reachable]


def _recursive_functions(program: ast.Program, known: set) -> set:
    """Names of functions participating in call-graph cycles, computed
    syntactically (sound over-approximation for locals-in-recursion).

    Functions whose address is taken anywhere are conservatively
    treated as recursive, because indirect calls could form cycles the
    syntactic scan cannot see.
    """
    from repro.graphs.digraph import DiGraph
    from repro.graphs.scc import tarjan_scc

    graph = DiGraph()
    address_taken: set = set()
    for fdef in program.functions:
        graph.add_node(fdef.name)

        def visit_expr(expr: ast.Expr, caller: str = fdef.name) -> None:
            if isinstance(expr, ast.CallExpr):
                if isinstance(expr.callee, ast.NameExpr) and expr.callee.name in known:
                    graph.add_edge(caller, expr.callee.name)
                else:
                    visit_expr(expr.callee, caller)
                for a in expr.args:
                    visit_expr(a, caller)
            elif isinstance(expr, ast.NameExpr):
                if expr.name in known:
                    address_taken.add(expr.name)
            elif isinstance(expr, ast.UnaryExpr):
                visit_expr(expr.operand, caller)
            elif isinstance(expr, ast.BinaryExpr):
                visit_expr(expr.lhs, caller)
                visit_expr(expr.rhs, caller)
            elif isinstance(expr, ast.MemberExpr):
                visit_expr(expr.base, caller)
            elif isinstance(expr, ast.IndexExpr):
                visit_expr(expr.base, caller)
                visit_expr(expr.index, caller)

        def visit_stmt(stmt: ast.Stmt) -> None:
            for child in _stmt_exprs(stmt):
                if child is not None:
                    visit_expr(child)
            for child_stmt in _stmt_children(stmt):
                visit_stmt(child_stmt)
            if isinstance(stmt, ast.ForkStmt) and isinstance(stmt.routine, ast.NameExpr):
                if stmt.routine.name in known:
                    # A fork edge: the routine runs, so cycles through
                    # forks count as recursion for its locals.
                    graph.add_edge(fdef.name, stmt.routine.name)

        for stmt in fdef.body:
            visit_stmt(stmt)

    in_cycle = set()
    for scc in tarjan_scc(graph):
        if len(scc) > 1:
            in_cycle.update(scc)
        elif graph.has_edge(scc[0], scc[0]):
            in_cycle.add(scc[0])
    return in_cycle | address_taken


def _stmt_exprs(stmt: ast.Stmt):
    """Direct child expressions of a statement."""
    if isinstance(stmt, ast.DeclStmt):
        return [stmt.init]
    if isinstance(stmt, ast.AssignStmt):
        return [stmt.target, stmt.value]
    if isinstance(stmt, ast.ExprStmt):
        return [stmt.expr]
    if isinstance(stmt, ast.IfStmt):
        return [stmt.cond]
    if isinstance(stmt, ast.WhileStmt):
        return [stmt.cond]
    if isinstance(stmt, ast.ForStmt):
        return [stmt.cond]
    if isinstance(stmt, ast.ReturnStmt):
        return [stmt.value]
    if isinstance(stmt, ast.ForkStmt):
        return [stmt.handle, stmt.arg]
    if isinstance(stmt, ast.JoinStmt):
        return [stmt.handle]
    if isinstance(stmt, (ast.LockStmt, ast.UnlockStmt)):
        return [stmt.lock_expr]
    return []


def _stmt_children(stmt: ast.Stmt):
    """Direct child statements of a statement."""
    if isinstance(stmt, ast.IfStmt):
        return stmt.then_body + stmt.else_body
    if isinstance(stmt, ast.WhileStmt):
        return stmt.body
    if isinstance(stmt, ast.ForStmt):
        children = list(stmt.body)
        if stmt.init is not None:
            children.append(stmt.init)
        if stmt.step is not None:
            children.append(stmt.step)
        return children
    return []


def lower_program(program: ast.Program, name: str = "module") -> Module:
    """Lower *program* to naive (pre-mem2reg) IR."""
    return Lowerer(program, name).lower()
