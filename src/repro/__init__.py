"""FSAM: sparse flow-sensitive pointer analysis for multithreaded
programs — a complete Python reproduction of Sui, Di & Xue, CGO 2016.

Entry points:

- :func:`repro.frontend.compile_source` — MiniC text -> partial-SSA IR.
- :class:`repro.fsam.FSAM` / :func:`repro.fsam.analyze_source` — the
  full analysis pipeline (pre-analysis, thread-oblivious def-use,
  interleaving/value-flow/lock analyses, sparse solve).
- :class:`repro.baseline.NonSparseAnalysis` — the NONSPARSE baseline.
- :mod:`repro.clients` — race/deadlock detection, TSan instrumentation
  reduction, escape classification.
- ``python -m repro`` — the command-line interface.
"""

__version__ = "1.0.0"
