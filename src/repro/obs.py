"""Unified observability layer for the analysis pipeline.

Every stage of the pipeline used to report on itself through a
different side channel — ``FSAMResult.phase_times`` for wall-clock,
``ValueFlowStats`` for [THREAD-VF] counters, ad-hoc ``stats()`` dicts
elsewhere — which made "why is this phase slow?" unanswerable. This
module replaces the patchwork with one :class:`Observer` that the
whole pipeline shares:

- **hierarchical timers** — ``with obs.phase("sparse_solve"): ...``
  scopes nest, producing a tree of per-phase (and sub-phase) wall
  times;
- **named counters** — ``obs.count("solver.strong_updates", n)``,
  flat ``stage.metric`` names (see DESIGN.md for the naming scheme);
- **gauges** — point-in-time snapshots such as graph sizes, recorded
  with ``obs.gauge("memssa.dug_nodes", n)``;
- **per-phase memory** — when ``tracemalloc`` is tracing, each phase
  records its own peak traced size (not just the run-wide peak), and
  each phase snapshot includes the process peak RSS where the
  ``resource`` module is available;
- **histograms** — ``obs.observe("pool.run_seconds", dt)`` feeds a
  mergeable log-bucketed :class:`Histogram` (count/sum/min/max plus
  p50/p95/p99 interpolated from the bucket bounds), the building
  block of cross-process latency distributions;
- **export** — :meth:`Observer.to_dict` produces the one JSON
  document (schema ``repro.obs/1``) that the CLI ``--profile`` flag,
  the ``repro stats`` subcommand, and the measurement harness all
  consume; :func:`profile_to_csv` flattens it for spreadsheets and
  :func:`validate_profile` checks a document against the schema.
  :meth:`Observer.to_metrics_dict` exports the flat telemetry view
  (schema ``repro.metrics/1``: counters, gauges, histograms, phase
  seconds) and :meth:`Observer.merge_metrics` folds one such snapshot
  — typically shipped back from a pool worker process — into another
  observer, which is how per-request spans aggregate into service
  rollups; :func:`validate_metrics` / :func:`validate_metrics_stream`
  check the documents.

Stages that sit on hot paths accumulate plain integer tallies locally
and flush them into the observer once per phase, so the instrumented
pipeline stays within a few percent of the uninstrumented one
(guarded by ``benchmarks/test_observability_overhead.py``).

This module is a leaf: apart from the :mod:`repro.schemas` constants
module (itself a pure leaf), it imports nothing from the rest of
``repro``, so any stage (including :mod:`repro.graphs`) may depend
on it without cycles.
"""

from __future__ import annotations

import io
import json
import math
import sys
import time
import tracemalloc
from typing import Dict, Iterator, List, Optional, Tuple

from repro.schemas import METRICS_SCHEMA, PROFILE_SCHEMA

try:  # pragma: no cover - platform dependent
    import resource as _resource
except ImportError:  # pragma: no cover - non-unix
    _resource = None

_HAVE_RESET_PEAK = hasattr(tracemalloc, "reset_peak")


def _rss_kb() -> Optional[int]:
    """Current peak RSS of the process in KiB (None if unavailable)."""
    if _resource is None:
        return None
    usage = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss units are platform-defined: bytes on macOS, KiB on
    # Linux (and the BSDs we care about). Decide by platform, not by
    # magnitude — a >4 GiB RSS on Linux is real and must stay exact.
    if sys.platform == "darwin":
        return usage // 1024
    return usage


class PhaseRecord:
    """One timed phase: wall time, memory snapshots, children."""

    __slots__ = ("name", "seconds", "peak_traced_bytes", "rss_kb",
                 "children", "_start")

    def __init__(self, name: str) -> None:
        self.name = name
        self.seconds = 0.0
        # Peak tracemalloc traced size observed while the phase was
        # open (0 when tracemalloc was not tracing).
        self.peak_traced_bytes = 0
        self.rss_kb: Optional[int] = None
        self.children: List["PhaseRecord"] = []
        self._start = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "peak_traced_kb": (self.peak_traced_bytes / 1024.0
                               if self.peak_traced_bytes else 0.0),
            "rss_kb": self.rss_kb,
            "children": [c.to_dict() for c in self.children],
        }


class _PhaseScope:
    """Context manager returned by :meth:`Observer.phase`."""

    __slots__ = ("_obs", "_record")

    def __init__(self, obs: "Observer", record: PhaseRecord) -> None:
        self._obs = obs
        self._record = record

    def __enter__(self) -> PhaseRecord:
        self._obs._enter_phase(self._record)
        return self._record

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._obs._exit_phase(self._record)
        return False  # propagate exceptions (deadlines must still fire)


#: Log-bucket growth factor: four buckets per doubling keeps any
#: bucket-interpolated percentile within ~19% of the true value while
#: covering microseconds-to-hours in a few dozen sparse buckets.
HISTOGRAM_BASE = 2.0 ** 0.25

_LOG_BASE = math.log(HISTOGRAM_BASE)


class Histogram:
    """A mergeable log-bucketed value distribution.

    Bucket ``i`` covers ``[BASE**i, BASE**(i+1))``; only touched
    buckets are stored, so the index may be negative (sub-second
    latencies live there). Non-positive observations are clamped to a
    dedicated ``zeros`` bucket — durations cannot be negative, and a
    clock that reads 0 is a resolution artifact, not a signal.

    Two histograms with the same base merge exactly (bucket counts
    add), which is what makes per-worker recording + parent-side
    aggregation sound: merge-of-splits equals the whole, up to float
    associativity in ``sum``.
    """

    __slots__ = ("count", "sum", "min", "max", "zeros", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.zeros = 0
        self.buckets: Dict[int, int] = {}

    @staticmethod
    def bucket_index(value: float) -> int:
        """The bucket holding *value* (> 0): the ``i`` with
        ``BASE**i <= value < BASE**(i+1)``."""
        i = math.floor(math.log(value) / _LOG_BASE)
        # math.log rounds; re-check the invariant at bucket edges so a
        # value sitting exactly on a bound lands deterministically.
        if HISTOGRAM_BASE ** (i + 1) <= value:
            i += 1
        elif HISTOGRAM_BASE ** i > value:
            i -= 1
        return i

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0.0 or value != value:  # clamp negatives and NaN
            value = 0.0
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value == 0.0:
            self.zeros += 1
        else:
            i = self.bucket_index(value)
            self.buckets[i] = self.buckets.get(i, 0) + 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other* into this histogram (bucket-exact)."""
        if other.count == 0:
            return self
        self.count += other.count
        self.sum += other.sum
        self.zeros += other.zeros
        assert other.min is not None and other.max is not None
        self.min = other.min if self.min is None else min(self.min, other.min)
        self.max = other.max if self.max is None else max(self.max, other.max)
        for i, n in other.buckets.items():
            self.buckets[i] = self.buckets.get(i, 0) + n
        return self

    def percentile(self, q: float) -> Optional[float]:
        """The *q*-quantile (``0 <= q <= 1``), linearly interpolated
        inside the covering bucket and clamped to the observed
        [min, max]. None for an empty histogram."""
        if self.count == 0:
            return None
        assert self.min is not None and self.max is not None
        target = q * self.count
        cum = self.zeros
        if self.zeros and target <= cum:
            return 0.0
        for i in sorted(self.buckets):
            n = self.buckets[i]
            if cum + n >= target:
                lo = HISTOGRAM_BASE ** i
                hi = HISTOGRAM_BASE ** (i + 1)
                value = lo + (hi - lo) * ((target - cum) / n)
                return max(self.min, min(self.max, value))
            cum += n
        return self.max  # pragma: no cover - q > 1 only

    def to_dict(self) -> Dict[str, object]:
        """Wire form: sparse ``[index, upper_bound, count]`` bucket
        rows (sorted by index) plus the summary stats and the three
        headline percentiles."""
        doc: Dict[str, object] = {
            "count": self.count,
            "sum": self.sum,
            "min": 0.0 if self.min is None else self.min,
            "max": 0.0 if self.max is None else self.max,
            "zeros": self.zeros,
            "base": HISTOGRAM_BASE,
            "buckets": [[i, HISTOGRAM_BASE ** (i + 1), self.buckets[i]]
                        for i in sorted(self.buckets)],
        }
        for key, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            p = self.percentile(q)
            doc[key] = 0.0 if p is None else p
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "Histogram":
        hist = cls()
        hist.count = int(doc["count"])                 # type: ignore[arg-type]
        hist.sum = float(doc["sum"])                   # type: ignore[arg-type]
        hist.zeros = int(doc.get("zeros", 0))          # type: ignore[arg-type]
        if hist.count:
            hist.min = float(doc["min"])               # type: ignore[arg-type]
            hist.max = float(doc["max"])               # type: ignore[arg-type]
        for row in doc.get("buckets", []):             # type: ignore[union-attr]
            index, _bound, n = row
            hist.buckets[int(index)] = int(n)
        return hist


class Observer:
    """Collects timers, counters, and gauges for one pipeline run.

    One observer lives for one analysis run (like the
    :class:`~repro.pts.PTUniverse`); mixing runs in one observer would
    conflate their phases.
    """

    enabled = True

    def __init__(self, name: str = "", track_memory: bool = True) -> None:
        self.name = name
        self.track_memory = track_memory
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.phases: List[PhaseRecord] = []   # completed top-level phases
        self._stack: List[PhaseRecord] = []
        # Phase seconds folded in from merged repro.metrics/1 snapshots
        # (worker spans); kept apart from the locally timed tree so
        # profile export (repro.obs/1) stays purely local.
        self._merged_phase_seconds: Dict[str, float] = {}
        # Run-wide peak traced size, folded across the reset_peak
        # segments (see _fold_peak); harnesses read this instead of a
        # raw tracemalloc peak, which per-phase tracking resets.
        self.peak_traced_bytes = 0

    # -- counters and gauges ----------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add *n* to counter *name* (created at 0 on first use)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def gauge(self, name: str, value: float) -> None:
        """Record the latest snapshot of gauge *name*."""
        self.gauges[name] = value

    # -- histograms --------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram *name* (created empty on
        first use). Same flat ``stage.metric`` naming as counters."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self.histograms.get(name)

    # -- hierarchical timers ----------------------------------------------

    def phase(self, name: str) -> _PhaseScope:
        """A timing scope; nest freely for sub-phases."""
        return _PhaseScope(self, PhaseRecord(name))

    def _fold_peak(self) -> None:
        """Fold the tracemalloc peak of the segment since the last fold
        into every open phase and the run maximum, then start a fresh
        segment. Peaks are absolute traced sizes, so taking the max of
        segment peaks per phase yields that phase's true peak."""
        if not (self.track_memory and tracemalloc.is_tracing()):
            return
        _current, peak = tracemalloc.get_traced_memory()
        if peak > self.peak_traced_bytes:
            self.peak_traced_bytes = peak
        for record in self._stack:
            if peak > record.peak_traced_bytes:
                record.peak_traced_bytes = peak
        if _HAVE_RESET_PEAK:
            tracemalloc.reset_peak()

    def _enter_phase(self, record: PhaseRecord) -> None:
        self._fold_peak()  # the preceding segment belongs to outer phases
        self._stack.append(record)
        record._start = time.perf_counter()

    def _exit_phase(self, record: PhaseRecord) -> None:
        record.seconds = time.perf_counter() - record._start
        self._fold_peak()  # this segment belongs to record too
        record.rss_kb = _rss_kb()
        popped = self._stack.pop()
        assert popped is record, "mismatched phase nesting"
        if self._stack:
            self._stack[-1].children.append(record)
        else:
            self.phases.append(record)

    # -- derived views ------------------------------------------------------

    def phase_seconds(self) -> Dict[str, float]:
        """Flattened ``path -> seconds`` map; nested phases use
        ``outer/inner`` paths (counter names use dots, phase paths use
        slashes, so the two namespaces cannot collide)."""
        result: Dict[str, float] = {}

        def walk(records: List[PhaseRecord], prefix: str) -> None:
            for record in records:
                path = f"{prefix}/{record.name}" if prefix else record.name
                result[path] = result.get(path, 0.0) + record.seconds
                walk(record.children, path)

        walk(self.phases, "")
        return result

    def total_seconds(self) -> float:
        return sum(record.seconds for record in self.phases)

    # -- export -------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """The profile document (schema ``repro.obs/1``)."""
        return {
            "schema": PROFILE_SCHEMA,
            "name": self.name,
            "total_seconds": self.total_seconds(),
            "peak_traced_kb": (self.peak_traced_bytes / 1024.0
                               if self.peak_traced_bytes else 0.0),
            "phases": [record.to_dict() for record in self.phases],
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_csv(self) -> str:
        return profile_to_csv(self.to_dict())

    # -- cross-process telemetry (repro.metrics/1) -------------------------

    def to_metrics_dict(self) -> Dict[str, object]:
        """The flat telemetry snapshot (schema ``repro.metrics/1``):
        counters, gauges, histograms, and flattened ``path -> seconds``
        phase times (local tree plus anything folded in by
        :meth:`merge_metrics`). This is the wire form a pool worker
        ships back through the result pipe, and the document ``repro
        serve --metrics-interval`` / batch-report rollups emit."""
        phase_seconds = self.phase_seconds()
        for path, seconds in self._merged_phase_seconds.items():
            phase_seconds[path] = phase_seconds.get(path, 0.0) + seconds
        return {
            "schema": METRICS_SCHEMA,
            "name": self.name,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {name: self.histograms[name].to_dict()
                           for name in sorted(self.histograms)},
            "phase_seconds": {path: phase_seconds[path]
                              for path in sorted(phase_seconds)},
        }

    def merge_metrics(self, doc: Dict[str, object]) -> None:
        """Fold one ``repro.metrics/1`` snapshot (a worker span) into
        this observer: counters add, gauges take the snapshot's value,
        histograms merge bucket-wise, and every phase path both
        accumulates into the merged totals and is observed into a
        ``phase.<path>`` histogram — so merging many request spans
        yields cross-request latency distributions per phase.

        Snapshots that already carry a ``phase.<path>`` histogram
        (re-merged rollups) keep theirs; the phase seconds are not
        observed a second time."""
        for name, value in doc.get("counters", {}).items():  # type: ignore[union-attr]
            self.count(name, int(value))
        for name, value in doc.get("gauges", {}).items():  # type: ignore[union-attr]
            self.gauge(name, value)
        histograms = doc.get("histograms", {})
        assert isinstance(histograms, dict)
        for name, hist_doc in histograms.items():
            incoming = Histogram.from_dict(hist_doc)
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = incoming
            else:
                mine.merge(incoming)
        for path, seconds in doc.get("phase_seconds", {}).items():  # type: ignore[union-attr]
            seconds = float(seconds)
            self._merged_phase_seconds[path] = \
                self._merged_phase_seconds.get(path, 0.0) + seconds
            if f"phase.{path}" not in histograms:
                self.observe(f"phase.{path}", seconds)


class _NullScope:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class NullObserver(Observer):
    """A no-op observer: every hook is free, so stages can call the
    observer unconditionally and profiling off costs nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(name="", track_memory=False)

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def merge_metrics(self, doc: Dict[str, object]) -> None:
        pass

    def phase(self, name: str) -> _NullScope:  # type: ignore[override]
        return _NULL_SCOPE


#: Shared no-op instance; stages default to it when no observer is given.
NULL_OBS = NullObserver()


# -- schema ----------------------------------------------------------------


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(f"invalid profile document: {message}")


def _validate_phase(phase: object, path: str) -> None:
    _check(isinstance(phase, dict), f"phase at {path} is not an object")
    assert isinstance(phase, dict)
    _check(isinstance(phase.get("name"), str) and phase["name"] != "",
           f"phase at {path} lacks a name")
    _check(isinstance(phase.get("seconds"), (int, float))
           and phase["seconds"] >= 0,
           f"phase {phase.get('name')!r} has no non-negative seconds")
    _check(isinstance(phase.get("peak_traced_kb"), (int, float)),
           f"phase {phase.get('name')!r} lacks peak_traced_kb")
    rss = phase.get("rss_kb")
    _check(rss is None or isinstance(rss, int),
           f"phase {phase.get('name')!r} has non-integer rss_kb")
    children = phase.get("children")
    _check(isinstance(children, list),
           f"phase {phase.get('name')!r} lacks a children list")
    assert isinstance(children, list)
    for i, child in enumerate(children):
        _validate_phase(child, f"{path}/{phase['name']}[{i}]")


def validate_profile(doc: object) -> Dict[str, object]:
    """Check *doc* against the ``repro.obs/1`` schema.

    Returns the document unchanged; raises :class:`ValueError` with a
    pointed message on the first violation. Used by tests and the CI
    profile-artifact step (no external jsonschema dependency).
    """
    _check(isinstance(doc, dict), "top level is not an object")
    assert isinstance(doc, dict)
    _check(doc.get("schema") == PROFILE_SCHEMA,
           f"schema is {doc.get('schema')!r}, expected {PROFILE_SCHEMA!r}")
    _check(isinstance(doc.get("name"), str), "name is not a string")
    _check(isinstance(doc.get("total_seconds"), (int, float))
           and doc["total_seconds"] >= 0, "total_seconds missing or negative")
    _check(isinstance(doc.get("peak_traced_kb"), (int, float)),
           "peak_traced_kb missing")
    phases = doc.get("phases")
    _check(isinstance(phases, list), "phases is not a list")
    assert isinstance(phases, list)
    for i, phase in enumerate(phases):
        _validate_phase(phase, f"[{i}]")
    counters = doc.get("counters")
    _check(isinstance(counters, dict), "counters is not an object")
    assert isinstance(counters, dict)
    for key, value in counters.items():
        _check(isinstance(key, str) and isinstance(value, int) and value >= 0,
               f"counter {key!r} is not a non-negative integer")
    gauges = doc.get("gauges")
    _check(isinstance(gauges, dict), "gauges is not an object")
    assert isinstance(gauges, dict)
    for key, value in gauges.items():
        _check(isinstance(key, str) and isinstance(value, (int, float)),
               f"gauge {key!r} is not numeric")
    return doc


def _mcheck(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(f"invalid metrics document: {message}")


def _validate_histogram(name: str, doc: object) -> None:
    _mcheck(isinstance(doc, dict), f"histogram {name!r} is not an object")
    assert isinstance(doc, dict)
    count = doc.get("count")
    _mcheck(isinstance(count, int) and count >= 0,
            f"histogram {name!r} count is not a non-negative integer")
    zeros = doc.get("zeros")
    _mcheck(isinstance(zeros, int) and zeros >= 0,
            f"histogram {name!r} zeros is not a non-negative integer")
    _mcheck(isinstance(doc.get("sum"), (int, float)) and doc["sum"] >= 0
            and math.isfinite(doc["sum"]),
            f"histogram {name!r} sum missing, negative, or non-finite")
    base = doc.get("base")
    _mcheck(isinstance(base, (int, float)) and base > 1,
            f"histogram {name!r} base must be a number > 1")
    buckets = doc.get("buckets")
    _mcheck(isinstance(buckets, list),
            f"histogram {name!r} buckets is not a list")
    assert isinstance(buckets, list) and isinstance(count, int) \
        and isinstance(zeros, int)
    total = zeros
    prev_index: Optional[int] = None
    for row in buckets:
        _mcheck(isinstance(row, (list, tuple)) and len(row) == 3,
                f"histogram {name!r} bucket row is not [index, bound, count]")
        index, bound, n = row
        _mcheck(isinstance(index, int),
                f"histogram {name!r} bucket index is not an integer")
        _mcheck(prev_index is None or index > prev_index,
                f"histogram {name!r} bucket bounds are not sorted")
        _mcheck(isinstance(bound, (int, float)) and bound > 0,
                f"histogram {name!r} bucket bound is not positive")
        _mcheck(isinstance(n, int) and n >= 0,
                f"histogram {name!r} has a negative bucket count")
        prev_index = index
        total += n
    _mcheck(total == count,
            f"histogram {name!r} bucket counts sum to {total}, "
            f"count says {count}")
    if count:
        _mcheck(isinstance(doc.get("min"), (int, float))
                and isinstance(doc.get("max"), (int, float))
                and 0 <= doc["min"] <= doc["max"],
                f"histogram {name!r} min/max invalid")
    else:
        _mcheck(not buckets and zeros == 0,
                f"histogram {name!r} is empty but has buckets")
    for key in ("p50", "p95", "p99"):
        if key in doc:
            _mcheck(isinstance(doc[key], (int, float)),
                    f"histogram {name!r} {key} is not numeric")


def validate_metrics(doc: object) -> Dict[str, object]:
    """Check *doc* against the ``repro.metrics/1`` schema (same
    contract as :func:`validate_profile`: returns the document
    unchanged, raises :class:`ValueError` on the first violation).
    Rejects negative bucket counts and unsorted bucket bounds; use
    :func:`validate_metrics_stream` for the cross-snapshot counter
    monotonicity check."""
    _mcheck(isinstance(doc, dict), "top level is not an object")
    assert isinstance(doc, dict)
    _mcheck(doc.get("schema") == METRICS_SCHEMA,
            f"schema is {doc.get('schema')!r}, expected {METRICS_SCHEMA!r}")
    _mcheck(isinstance(doc.get("name"), str), "name is not a string")
    counters = doc.get("counters")
    _mcheck(isinstance(counters, dict), "counters is not an object")
    assert isinstance(counters, dict)
    for key, value in counters.items():
        _mcheck(isinstance(key, str) and isinstance(value, int)
                and value >= 0,
                f"counter {key!r} is not a non-negative integer")
    gauges = doc.get("gauges")
    _mcheck(isinstance(gauges, dict), "gauges is not an object")
    assert isinstance(gauges, dict)
    for key, value in gauges.items():
        _mcheck(isinstance(key, str) and isinstance(value, (int, float)),
                f"gauge {key!r} is not numeric")
    histograms = doc.get("histograms")
    _mcheck(isinstance(histograms, dict), "histograms is not an object")
    assert isinstance(histograms, dict)
    for name, hist in histograms.items():
        _validate_histogram(name, hist)
    phase_seconds = doc.get("phase_seconds")
    _mcheck(isinstance(phase_seconds, dict),
            "phase_seconds is not an object")
    assert isinstance(phase_seconds, dict)
    for path, seconds in phase_seconds.items():
        _mcheck(isinstance(path, str)
                and isinstance(seconds, (int, float)) and seconds >= 0,
                f"phase_seconds[{path!r}] is not a non-negative number")
    return doc


def validate_metrics_stream(docs: List[Dict[str, object]]
                            ) -> List[Dict[str, object]]:
    """Validate a sequence of ``repro.metrics/1`` snapshots from one
    emitter (the ``--metrics-interval`` JSONL stream): every document
    must pass :func:`validate_metrics`, and a counter present in two
    consecutive snapshots must never regress — counters are cumulative
    within a stream, so a decrease means lost or reordered telemetry.
    Returns *docs* unchanged."""
    _mcheck(isinstance(docs, list) and len(docs) > 0,
            "metrics stream is empty or not a list")
    previous: Optional[Dict[str, object]] = None
    for i, doc in enumerate(docs):
        validate_metrics(doc)
        if previous is not None:
            prev_counters = previous["counters"]
            assert isinstance(prev_counters, dict)
            counters = doc["counters"]
            assert isinstance(counters, dict)
            for key, before in prev_counters.items():
                if key in counters and counters[key] < before:
                    _mcheck(False,
                            f"counter {key!r} regressed from {before} to "
                            f"{counters[key]} at stream position {i}")
        previous = doc
    return docs


# -- renderers -------------------------------------------------------------


def _walk_phases(phases: List[Dict[str, object]], prefix: str = ""
                 ) -> Iterator[Tuple[str, Dict[str, object]]]:
    for phase in phases:
        path = f"{prefix}/{phase['name']}" if prefix else str(phase["name"])
        yield path, phase
        yield from _walk_phases(phase.get("children", []), path)  # type: ignore[arg-type]


def profile_to_csv(doc: Dict[str, object]) -> str:
    """Flatten a profile document to ``kind,name,value`` CSV rows."""
    import csv
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["kind", "name", "value"])
    for path, phase in _walk_phases(doc.get("phases", [])):  # type: ignore[arg-type]
        writer.writerow(["phase_seconds", path, f"{phase['seconds']:.6f}"])
        writer.writerow(["phase_peak_traced_kb", path,
                         f"{phase['peak_traced_kb']:.1f}"])
    for name, value in doc.get("counters", {}).items():  # type: ignore[union-attr]
        writer.writerow(["counter", name, value])
    for name, value in doc.get("gauges", {}).items():  # type: ignore[union-attr]
        writer.writerow(["gauge", name, value])
    return buffer.getvalue()


def render_profile(doc: Dict[str, object]) -> str:
    """Human-readable profile (the ``repro stats`` text output)."""
    lines = []
    name = doc.get("name") or "analysis"
    lines.append(f"profile of {name}: {doc['total_seconds']:.3f}s total")
    lines.append("phases:")

    def emit(phases, depth):
        for phase in phases:
            mem = ""
            if phase.get("peak_traced_kb"):
                mem = f"  peak {phase['peak_traced_kb']:.0f} KiB"
            # Clamp the name column: at depth >= 14 the shrinking
            # field width would go non-positive, and a negative width
            # is a ValueError in format().
            width = max(1, 28 - 2 * depth)
            lines.append(f"  {'  ' * depth}{phase['name']:<{width}} "
                         f"{phase['seconds']:>9.4f}s{mem}")
            emit(phase.get("children", []), depth + 1)

    emit(doc.get("phases", []), 0)
    counters = doc.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(k) for k in counters)
        for key in sorted(counters):
            lines.append(f"  {key:<{width}} {counters[key]:>12}")
    gauges = doc.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(k) for k in gauges)
        for key in sorted(gauges):
            lines.append(f"  {key:<{width}} {gauges[key]:>12}")
    return "\n".join(lines)
