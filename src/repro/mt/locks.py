"""Lock analysis (paper Section 3.3.3, Definitions 3-6).

Computes lock-release spans flow- and context-sensitively over each
thread's state graph, derives per-object span heads and tails from
the thread-oblivious def-use graph, and decides which MHP aliased
pairs are non-interference lock pairs — those [THREAD-VF] edges are
spurious and get filtered (Figure 9's s2 -o-> s4).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.andersen import AndersenResult
from repro.cfg.icfg import NodeKind
from repro.ir.instructions import Instruction, Load, Lock, Store, Unlock, Wait
from repro.ir.values import MemObject, Temp
from repro.memssa.builder import MemorySSABuilder
from repro.memssa.dug import DUG, StmtNode
from repro.mt.mhp import MHPOracle
from repro.mt.threads import AbstractThread, ThreadModel
from repro.obs import Observer
from repro.trace import NULL_TRACER, Tracer


class LockSpan:
    """A lock-release span: the context-sensitive statements between a
    lock acquisition and its matching releases (Definition 3)."""

    def __init__(self, thread: AbstractThread, lock_obj: MemObject,
                 lock_sid: int, members: Set[int],
                 member_instrs: Set[int]) -> None:
        self.thread = thread
        self.lock_obj = lock_obj
        self.lock_sid = lock_sid
        self.members = members              # state ids in the thread graph
        self.member_instrs = member_instrs  # instruction ids
        self._heads: Dict[int, Set[int]] = {}  # obj.id -> instr ids
        self._tails: Dict[int, Set[int]] = {}

    def __repr__(self) -> str:
        return (f"<span lock={self.lock_obj.name} thread=t{self.thread.id} "
                f"|members|={len(self.members)}>")


class LockAnalysis:
    """Builds all spans and answers non-interference queries."""

    def __init__(self, model: ThreadModel, andersen: AndersenResult,
                 dug: DUG, builder: MemorySSABuilder,
                 tracer: Tracer = NULL_TRACER) -> None:
        self.model = model
        self.andersen = andersen
        self.dug = dug
        self.builder = builder
        self.tracer = tracer
        self.spans: List[LockSpan] = []
        # (thread id, sid) -> span indices covering that state.
        self._spans_by_state: Dict[Tuple[int, int], List[int]] = {}
        # Tallies flushed to the observer at end of run (repro.obs).
        self.head_cache_hits = 0
        self.head_computed = 0
        self.tail_cache_hits = 0
        self.tail_computed = 0
        self.filter_queries = 0
        self._build()

    # -- span construction ------------------------------------------------

    def _lock_object(self, ptr) -> Optional[MemObject]:
        """The singleton lock object *ptr* must point to, or None.
        Must-alias is required: l == l' only when both resolve to the
        same unique runtime lock (paper: "point to the same singleton
        lock object")."""
        if not isinstance(ptr, Temp):
            return None
        pts = self.andersen.pts(ptr)
        if len(pts) != 1:
            return None
        obj = next(iter(pts))
        return obj if obj.is_singleton else None

    def _build(self) -> None:
        for thread in self.model.threads:
            graph = self.model.state_graphs[thread.id]
            for sid, (ctx, node) in enumerate(graph.state_info):
                if node.kind is not NodeKind.STMT:
                    continue
                # A span begins at a lock acquisition — or at a
                # condition wait, which re-acquires the mutex on
                # return (extension: pthread_cond_wait modelling).
                if isinstance(node.instr, Lock):
                    lock_obj = self._lock_object(node.instr.ptr)
                elif isinstance(node.instr, Wait):
                    lock_obj = self._lock_object(node.instr.mutex_ptr)
                else:
                    continue
                if lock_obj is None:
                    continue
                span = self._trace_span(thread, graph, sid, lock_obj)
                index = len(self.spans)
                self.spans.append(span)
                for member in span.members:
                    self._spans_by_state.setdefault((thread.id, member), []).append(index)
                if self.tracer.enabled:
                    self.tracer.emit(
                        "lock.span", lock=lock_obj.name, thread=thread.id,
                        acquire_line=node.instr.line, states=len(span.members),
                        instrs=len(span.member_instrs))

    def _trace_span(self, thread: AbstractThread, graph, lock_sid: int,
                    lock_obj: MemObject) -> LockSpan:
        """Forward reachability from the lock site, stopping at matching
        unlocks; calls/returns are already matched by the state graph."""
        members: Set[int] = {lock_sid}
        instrs: Set[int] = set()
        work = [lock_sid]
        while work:
            sid = work.pop()
            _ctx, node = graph.state(sid)
            if node.instr is not None:
                instrs.add(node.instr.id)
            if sid != lock_sid and node.kind is NodeKind.STMT:
                released = None
                if isinstance(node.instr, Unlock):
                    released = self._lock_object(node.instr.ptr)
                elif isinstance(node.instr, Wait):
                    # cond_wait releases the mutex: the span ends here
                    # (a fresh span is seeded at the wait itself).
                    released = self._lock_object(node.instr.mutex_ptr)
                # MemObjects are compared by allocation-site id, not
                # Python identity: distinct MemObject instances can
                # denote the same abstract object (e.g. after field
                # derivation or re-materialisation).
                if released is not None and released.id == lock_obj.id:
                    continue  # the span ends here (release included)
            for succ in graph.graph.successors(sid):
                if succ not in members:
                    members.add(succ)
                    work.append(succ)
        return LockSpan(thread, lock_obj, lock_sid, members, instrs)

    # -- span heads and tails ------------------------------------------------

    def _accesses_on(self, span: LockSpan, obj: MemObject) -> Tuple[Set[int], Set[int]]:
        """(all accesses, stores) on *obj* among the span's statements."""
        accesses: Set[int] = set()
        stores: Set[int] = set()
        for instr_id in span.member_instrs:
            if obj in self.builder.chis.get(instr_id, ()):  # store-like
                instr = self.model._instr_by_id.get(instr_id)
                if isinstance(instr, Store):
                    accesses.add(instr_id)
                    stores.add(instr_id)
            if obj in self.builder.mus.get(instr_id, ()):
                instr = self.model._instr_by_id.get(instr_id)
                if isinstance(instr, Load):
                    accesses.add(instr_id)
        return accesses, stores

    def span_head(self, span: LockSpan, obj: MemObject) -> Set[int]:
        """HD(span, o) — Definition 4: accesses of o with no def-use
        predecessor on o inside the span."""
        cached = span._heads.get(obj.id)
        if cached is not None:
            self.head_cache_hits += 1
            return cached
        self.head_computed += 1
        accesses, _stores = self._accesses_on(span, obj)
        head: Set[int] = set()
        for instr_id in accesses:
            instr = self.model._instr_by_id[instr_id]
            node = self.dug.stmt_node(instr)
            preceded = False
            for src in self.dug.mem_defs_of(node, obj):
                if isinstance(src, StmtNode) and src.instr.id in span.member_instrs \
                        and src.instr.id != instr_id:
                    preceded = True
                    break
            if not preceded:
                head.add(instr_id)
        span._heads[obj.id] = head
        if self.tracer.enabled:
            self.tracer.emit("lock.head", lock=span.lock_obj.name,
                             thread=span.thread.id, obj=obj.name,
                             lines=self._lines_of(head))
        return head

    def span_tail(self, span: LockSpan, obj: MemObject) -> Set[int]:
        """TL(span, o) — Definition 5: stores of o with no store
        successor on o inside the span."""
        cached = span._tails.get(obj.id)
        if cached is not None:
            self.tail_cache_hits += 1
            return cached
        self.tail_computed += 1
        _accesses, stores = self._accesses_on(span, obj)
        tail: Set[int] = set()
        for instr_id in stores:
            instr = self.model._instr_by_id[instr_id]
            node = self.dug.stmt_node(instr)
            overwritten = False
            for out_obj, dst in self.dug.mem_out(node):
                if out_obj.id != obj.id:
                    continue
                if isinstance(dst, StmtNode) and isinstance(dst.instr, Store) \
                        and dst.instr.id in span.member_instrs and dst.instr.id != instr_id:
                    overwritten = True
                    break
            if not overwritten:
                tail.add(instr_id)
        span._tails[obj.id] = tail
        if self.tracer.enabled:
            self.tracer.emit("lock.tail", lock=span.lock_obj.name,
                             thread=span.thread.id, obj=obj.name,
                             lines=self._lines_of(tail))
        return tail

    def _lines_of(self, instr_ids: Set[int]) -> List[int]:
        lines = []
        for instr_id in instr_ids:
            instr = self.model._instr_by_id.get(instr_id)
            if instr is not None and instr.line:
                lines.append(instr.line)
        return sorted(lines)

    # -- non-interference filtering ---------------------------------------------

    def _spans_of(self, thread: AbstractThread, sid: int) -> List[LockSpan]:
        return [self.spans[i] for i in self._spans_by_state.get((thread.id, sid), [])]

    def _instance_non_interfering(self, inst1, inst2, store: Store,
                                  target: Instruction, obj: MemObject) -> bool:
        """Definition 6 for one MHP instance pair: both protected by a
        common lock and the store is not a span tail or the target not
        a span head."""
        t1, sid1 = inst1
        t2, sid2 = inst2
        spans1 = self._spans_of(t1, sid1)
        spans2 = self._spans_of(t2, sid2)
        protected = False
        for sp1 in spans1:
            for sp2 in spans2:
                if sp1.lock_obj.id != sp2.lock_obj.id:
                    continue
                protected = True
                tail = self.span_tail(sp1, obj)
                head = self.span_head(sp2, obj)
                if store.id in tail and target.id in head:
                    return False  # this value flow is real
        return protected

    def commonly_protected(self, inst1, inst2) -> bool:
        """True when both context-sensitive statement instances sit in
        spans of one common lock (used by race-detection clients)."""
        t1, sid1 = inst1
        t2, sid2 = inst2
        for sp1 in self._spans_of(t1, sid1):
            for sp2 in self._spans_of(t2, sid2):
                if sp1.lock_obj.id == sp2.lock_obj.id:
                    return True
        return False

    def filters(self, store: Store, target: Instruction, obj: MemObject,
                mhp: MHPOracle) -> bool:
        """True when the would-be [THREAD-VF] edge store -obj-> target
        is spurious under lock protection for *every* MHP instance."""
        self.filter_queries += 1
        any_pair = False
        for inst1, inst2 in mhp.parallel_instance_pairs(store, target):
            any_pair = True
            if not self._instance_non_interfering(inst1, inst2, store, target, obj):
                return False
        return any_pair

    def filter_witness(self, store: Store, target: Instruction,
                       obj: MemObject, mhp: MHPOracle) -> Optional[MemObject]:
        """The lock object whose spans protect the pair — the witness
        cited by ``vf.pair`` lock-filtered trace events. Only
        meaningful right after :meth:`filters` returned True (every
        instance is then known non-interfering, so the first common
        lock found is a genuine protector)."""
        for inst1, inst2 in mhp.parallel_instance_pairs(store, target):
            for sp1 in self._spans_of(*inst1):
                for sp2 in self._spans_of(*inst2):
                    if sp1.lock_obj.id == sp2.lock_obj.id:
                        return sp1.lock_obj
        return None

    # -- observability ---------------------------------------------------------

    def flush_obs(self, obs: Observer) -> None:
        obs.count("locks.spans_built", len(self.spans))
        obs.count("locks.head_cache_hits", self.head_cache_hits)
        obs.count("locks.head_computed", self.head_computed)
        obs.count("locks.tail_cache_hits", self.tail_cache_hits)
        obs.count("locks.tail_computed", self.tail_computed)
        obs.count("locks.filter_queries", self.filter_queries)
