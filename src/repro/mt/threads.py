"""The static thread model (paper Section 3.1).

Abstract threads are context-sensitive fork sites; the main thread
roots the spawn tree. Each thread owns a *state graph*: its ICFG
expanded with calling contexts (callsites in call-graph cycles are
not pushed). On top of these the model computes:

- the spawn relation (direct and transitive, [T-FORK]),
- multi-forked threads (Definition 1),
- definite joins at join sites ([T-JOIN], including the symmetric
  fork/join loop correlation of Figure 11),
- a forward *must-join* data-flow per thread, from which full joins
  and the happens-before relation for siblings (Definition 2) derive.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.andersen import AndersenResult
from repro.cfg.callgraph import CallGraph
from repro.cfg.cfg import CFG
from repro.cfg.icfg import ICFG, ICFGNode, NodeKind
from repro.graphs.dataflow import DataflowProblem, solve_forward
from repro.graphs.digraph import DiGraph
from repro.ir.instructions import Call, Fork, Instruction, Join
from repro.ir.module import Module
from repro.ir.values import Function
from repro.mt.context import Context
from repro.mt.symmetry import SymmetricPair, find_symmetric_pairs


class AbstractThread:
    """A context-sensitive fork site (or the main thread)."""

    def __init__(self, tid: int, parent: Optional["AbstractThread"],
                 fork_site: Optional[Fork], spawn_ctx: Context,
                 routine: Function, multi_forked: bool) -> None:
        self.id = tid
        self.parent = parent
        self.fork_site = fork_site
        self.spawn_ctx = spawn_ctx
        self.routine = routine
        self.multi_forked = multi_forked
        self.children: List["AbstractThread"] = []

    @property
    def is_main(self) -> bool:
        return self.parent is None

    def ancestors(self) -> List["AbstractThread"]:
        result = []
        node = self.parent
        while node is not None:
            result.append(node)
            node = node.parent
        return result

    def descendants(self) -> List["AbstractThread"]:
        result: List[AbstractThread] = []
        work = list(self.children)
        while work:
            t = work.pop()
            result.append(t)
            work.extend(t.children)
        return result

    def __repr__(self) -> str:
        if self.is_main:
            return "<thread t0 (main)>"
        star = "*" if self.multi_forked else ""
        return f"<thread t{self.id}{star} {self.routine.name} @ ctx{self.spawn_ctx!r}>"


class ThreadStateGraph:
    """A thread's context-expanded ICFG.

    States are (context, ICFG node) pairs; edges follow intra edges,
    descend into callee bodies at call nodes (pushing the callsite
    unless it is cycle-collapsed), and return to the matching
    return-site at function exits.
    """

    def __init__(self, thread: AbstractThread, icfg: ICFG, callgraph: CallGraph,
                 max_context_depth: Optional[int] = None) -> None:
        self.thread = thread
        self.icfg = icfg
        self.callgraph = callgraph
        # None = full context-sensitivity (the paper's configuration,
        # with recursion cycles collapsed). An integer k caps the
        # callsite stack: deeper calls reuse the truncated context,
        # and the return map fans returns out to every registered
        # caller — coarser but sound, and much cheaper on programs
        # with deep call chains.
        self.max_context_depth = max_context_depth
        self.graph = DiGraph()                      # over state ids (ints)
        self.state_info: List[Tuple[Context, ICFGNode]] = []
        self._index: Dict[Tuple[Context, int], int] = {}
        self.entry_sid: int = -1
        self.exit_sids: List[int] = []
        self.instr_states: Dict[int, List[int]] = {}   # instr.id -> [sid]
        # (fn, ctx-in-callee) -> [(caller ctx, retsite node)]
        self._ret_map: Dict[Tuple[str, Context], List[Tuple[Context, ICFGNode]]] = {}
        self._exit_states: Dict[Tuple[str, Context], int] = {}

    def sid_of(self, ctx: Context, node: ICFGNode) -> Optional[int]:
        return self._index.get((ctx, node.uid))

    def state(self, sid: int) -> Tuple[Context, ICFGNode]:
        return self.state_info[sid]

    def _intern(self, ctx: Context, node: ICFGNode) -> Tuple[int, bool]:
        key = (ctx, node.uid)
        sid = self._index.get(key)
        if sid is not None:
            return sid, False
        sid = len(self.state_info)
        self._index[key] = sid
        self.state_info.append((ctx, node))
        self.graph.add_node(sid)
        if node.instr is not None and node.kind in (NodeKind.STMT, NodeKind.CALL):
            self.instr_states.setdefault(node.instr.id, []).append(sid)
        if node.kind is NodeKind.EXIT:
            self._exit_states[(node.function.name, ctx)] = sid
            if node.function is self.thread.routine and ctx == Context.EMPTY:
                self.exit_sids.append(sid)
        return sid, True

    def build(self) -> None:
        entry_node = self.icfg.entry_of(self.thread.routine)
        self.entry_sid, _ = self._intern(Context.EMPTY, entry_node)
        work = [self.entry_sid]
        while work:
            sid = work.pop()
            ctx, node = self.state_info[sid]
            for succ_ctx, succ_node in self._successors(ctx, node):
                succ_sid, fresh = self._intern(succ_ctx, succ_node)
                self.graph.add_edge(sid, succ_sid)
                if fresh:
                    work.append(succ_sid)

    def _successors(self, ctx: Context, node: ICFGNode) -> Iterable[Tuple[Context, ICFGNode]]:
        if node.kind is NodeKind.CALL:
            call = node.instr
            callees = [fn for fn in self.callgraph.callees(call)
                       if fn in self.icfg.entries]
            retsite = self.icfg.retsite_of(call)
            if not callees:
                # External/unresolved call: fall through.
                yield (ctx, retsite)
                return
            for callee in callees:
                if self.callgraph.site_in_cycle(call):
                    callee_ctx = ctx
                elif self.max_context_depth is not None \
                        and len(ctx) >= self.max_context_depth:
                    callee_ctx = ctx  # k-limit reached: merge contexts
                else:
                    callee_ctx = ctx.push(call.id)
                self._register_return(callee, callee_ctx, ctx, retsite)
                yield (callee_ctx, self.icfg.entry_of(callee))
            return
        if node.kind is NodeKind.EXIT:
            for caller_ctx, retsite in self._ret_map.get((node.function.name, ctx), []):
                yield (caller_ctx, retsite)
            return
        # STMT / RETSITE / ENTRY: follow intra-procedural edges only.
        # (Fork and join sites have only intra successors by
        # construction of the ICFG.)
        from repro.cfg.icfg import EdgeKind
        for succ in self.icfg.successors(node):
            if self.icfg.edge_kind(node, succ) is EdgeKind.INTRA:
                yield (ctx, succ)

    def _register_return(self, callee: Function, callee_ctx: Context,
                         caller_ctx: Context, retsite: ICFGNode) -> None:
        targets = self._ret_map.setdefault((callee.name, callee_ctx), [])
        if (caller_ctx, retsite) in targets:
            return
        targets.append((caller_ctx, retsite))
        # If the callee's exit state already exists (cycle-collapsed
        # contexts revisited), wire the new return edge immediately.
        exit_sid = self._exit_states.get((callee.name, callee_ctx))
        if exit_sid is not None:
            ret_sid, fresh = self._intern(caller_ctx, retsite)
            self.graph.add_edge(exit_sid, ret_sid)
            if fresh:
                # Freshly created return site needs expansion: walk it.
                self._expand_from(ret_sid)

    def _expand_from(self, sid: int) -> None:
        work = [sid]
        while work:
            cur = work.pop()
            ctx, node = self.state_info[cur]
            for succ_ctx, succ_node in self._successors(ctx, node):
                succ_sid, fresh = self._intern(succ_ctx, succ_node)
                self.graph.add_edge(cur, succ_sid)
                if fresh:
                    work.append(succ_sid)

    def fork_states(self) -> List[Tuple[int, Fork]]:
        result = []
        for sid, (ctx, node) in enumerate(self.state_info):
            if isinstance(node.instr, Fork) and node.kind is NodeKind.STMT:
                result.append((sid, node.instr))
        return result

    def join_states(self) -> List[Tuple[int, Join]]:
        result = []
        for sid, (ctx, node) in enumerate(self.state_info):
            if isinstance(node.instr, Join) and node.kind is NodeKind.STMT:
                result.append((sid, node.instr))
        return result

    def states_of_instr(self, instr: Instruction) -> List[int]:
        return self.instr_states.get(instr.id, [])


class ThreadModel:
    """Thread enumeration plus the relations FSAM's interference
    analyses consume."""

    def __init__(self, module: Module, andersen: AndersenResult,
                 icfg: Optional[ICFG] = None,
                 max_context_depth: Optional[int] = None) -> None:
        self.module = module
        self.andersen = andersen
        self.callgraph = andersen.callgraph
        self.icfg = icfg if icfg is not None else ICFG(module, self.callgraph)
        self.max_context_depth = max_context_depth
        self.threads: List[AbstractThread] = []
        self.state_graphs: Dict[int, ThreadStateGraph] = {}
        self.threads_by_fork: Dict[int, List[AbstractThread]] = {}
        self.symmetric_pairs: Dict[Tuple[int, int], SymmetricPair] = {}
        # Per thread: sid -> set of thread ids certainly dead past it.
        self.kills_at: Dict[int, Dict[int, FrozenSet[int]]] = {}
        # Per thread: sid -> must-joined thread-id set.
        self.must_join: Dict[int, Dict[int, FrozenSet[int]]] = {}
        # thread id -> ids of descendants it certainly joins by exit.
        self.fully_joined: Dict[int, FrozenSet[int]] = {}
        self.by_id: Dict[int, AbstractThread] = {}
        self._loop_cache: Dict[str, Set] = {}
        self._instr_by_id: Dict[int, Instruction] = {}
        for instr in module.all_instructions():
            self._instr_by_id[instr.id] = instr
        self._build()

    # -- construction -------------------------------------------------------

    def _build(self) -> None:
        self.symmetric_pairs = find_symmetric_pairs(self.module, self.andersen)
        counter = itertools.count()
        main = AbstractThread(next(counter), None, None, Context.EMPTY,
                              self.module.main, False)
        self.threads.append(main)
        self.by_id[main.id] = main
        seen: Set[Tuple[int, Context, int, str]] = set()
        queue = [main]
        while queue:
            thread = queue.pop(0)
            graph = ThreadStateGraph(thread, self.icfg, self.callgraph,
                                     max_context_depth=self.max_context_depth)
            graph.build()
            self.state_graphs[thread.id] = graph
            for sid, fork in graph.fork_states():
                ctx, _node = graph.state(sid)
                for routine in self.callgraph.callees(fork):
                    if routine.is_declaration or not routine.blocks:
                        continue
                    key = (thread.id, ctx, fork.id, routine.name)
                    if key in seen:
                        continue
                    seen.add(key)
                    multi = self._is_multi_forked(thread, ctx, fork)
                    child = AbstractThread(next(counter), thread, fork, ctx,
                                           routine, multi)
                    thread.children.append(child)
                    self.threads.append(child)
                    self.by_id[child.id] = child
                    self.threads_by_fork.setdefault(fork.id, []).append(child)
                    queue.append(child)
        # Children first: must-join of a child feeds the transitive
        # join closure of its parent.
        for thread in reversed(self.threads):
            self._compute_kills(thread)
            self._compute_must_join(thread)

    def _loop_blocks(self, fn: Function) -> Set:
        blocks = self._loop_cache.get(fn.name)
        if blocks is None:
            blocks = CFG(fn).loop_blocks
            self._loop_cache[fn.name] = blocks
        return blocks

    def _is_multi_forked(self, spawner: AbstractThread, ctx: Context, fork: Fork) -> bool:
        """Definition 1: fork in a loop or recursion, or spawner in M."""
        if spawner.multi_forked:
            return True
        fn = fork.function
        if fn is None:
            return True
        if self.callgraph.in_cycle(fn):
            return True
        if fork.block in self._loop_blocks(fn):
            return True
        for site_id in ctx:
            site = self._instr_by_id.get(site_id)
            if site is None or site.function is None:
                return True
            if self.callgraph.in_cycle(site.function):
                return True
            if site.block in self._loop_blocks(site.function):
                return True
        return False

    # -- joins ----------------------------------------------------------------

    def definite_joins(self, thread: AbstractThread, join: Join) -> Set[AbstractThread]:
        """Child threads certainly joined when *thread* executes *join*
        ([T-JOIN]): the handle must name exactly one abstract thread,
        spawned by *thread*, that denotes a unique runtime thread
        (not multi-forked) — or a multi-forked thread matched by the
        symmetric-loop correlation (handled separately via kill
        blocks, so it is excluded here)."""
        tids = self.andersen.pts(join.handle)
        if len(tids) != 1:
            return set()
        tid = next(iter(tids))
        fork = getattr(tid, "fork_site", None)
        if fork is None:
            return set()
        candidates = [t for t in self.threads_by_fork.get(fork.id, [])
                      if t.parent is thread]
        if len(candidates) != 1:
            return set()
        child = candidates[0]
        if child.multi_forked:
            return set()
        return {child}

    def symmetric_join_of(self, thread: AbstractThread, join: Join) -> Optional[Tuple[AbstractThread, SymmetricPair]]:
        """The multi-forked child joined by a symmetric join loop.
        The structural matcher (not points-to purity) identifies the
        fork, so reused tid arrays still correlate."""
        for tid in self.andersen.pts(join.handle):
            fork = getattr(tid, "fork_site", None)
            if fork is None:
                continue
            pair = self.symmetric_pairs.get((fork.id, join.id))
            if pair is None:
                continue
            candidates = [t for t in self.threads_by_fork.get(fork.id, [])
                          if t.parent is thread]
            if len(candidates) == 1:
                return candidates[0], pair
        return None

    def _join_closure(self, child: AbstractThread) -> FrozenSet[int]:
        """{child} plus descendants the child fully joins, transitively
        ([T-JOIN] transitivity through full joins)."""
        return frozenset({child.id}) | self.fully_joined.get(child.id, frozenset())

    def _compute_kills(self, thread: AbstractThread) -> None:
        graph = self.state_graphs[thread.id]
        kills: Dict[int, Set[int]] = {}
        for sid, join in graph.join_states():
            ctx, node = graph.state(sid)
            for child in self.definite_joins(thread, join):
                kills.setdefault(sid, set()).update(self._join_closure(child))
            symmetric = self.symmetric_join_of(thread, join)
            if symmetric is not None:
                child, pair = symmetric
                closure = self._join_closure(child)
                # The kill lands at the join loop's exits, where every
                # runtime instance has been joined.
                for block in pair.kill_blocks:
                    first = block.instructions[0]
                    kill_node = self.icfg.node_of(first)
                    kill_sid = graph.sid_of(ctx, kill_node)
                    if kill_sid is not None:
                        kills.setdefault(kill_sid, set()).update(closure)
        self.kills_at[thread.id] = {sid: frozenset(s) for sid, s in kills.items()}

    def _compute_must_join(self, thread: AbstractThread) -> None:
        """Forward must data-flow: which threads has *thread* certainly
        joined when reaching each state."""
        graph = self.state_graphs[thread.id]
        kills = self.kills_at[thread.id]
        universe = frozenset(t.id for t in self.threads)

        problem = DataflowProblem(
            graph.graph,
            entry_fact=lambda sid: frozenset(),
            bottom=lambda: universe,
            transfer=lambda sid, fact: fact | kills.get(sid, frozenset()),
            meet=lambda a, b: a & b,
            equal=lambda a, b: a == b,
        )
        out = solve_forward(problem, [graph.entry_sid])
        self.must_join[thread.id] = out
        if graph.exit_sids:
            joined = None
            for sid in graph.exit_sids:
                fact = out.get(sid, frozenset())
                joined = fact if joined is None else (joined & fact)
            self.fully_joined[thread.id] = joined or frozenset()
        else:
            self.fully_joined[thread.id] = frozenset()

    # -- relations --------------------------------------------------------------

    def is_ancestor(self, a: AbstractThread, b: AbstractThread) -> bool:
        node = b.parent
        while node is not None:
            if node is a:
                return True
            node = node.parent
        return False

    def siblings(self, a: AbstractThread, b: AbstractThread) -> bool:
        """[T-SIBLING]: neither transitively spawns the other."""
        return a is not b and not self.is_ancestor(a, b) and not self.is_ancestor(b, a)

    def _lca_children(self, a: AbstractThread, b: AbstractThread):
        """(A, B): the children of the lowest common ancestor on the
        paths to a and b. Returns None unless a, b are siblings."""
        a_chain = [a] + a.ancestors()
        b_chain = [b] + b.ancestors()
        a_set = {t.id: i for i, t in enumerate(a_chain)}
        for j, anc in enumerate(b_chain):
            if anc.id in a_set:
                i = a_set[anc.id]
                if i == 0 or j == 0:
                    return None  # ancestor relation, not siblings
                return a_chain[i - 1], b_chain[j - 1]
        return None

    def happens_before(self, a: AbstractThread, b: AbstractThread) -> bool:
        """Definition 2 (generalised through the spawn tree): a > b if,
        in their lowest common ancestor L, the fork of b's ancestor
        chain is preceded on every path by joins that certainly
        include a."""
        pair = self._lca_children(a, b)
        if pair is None:
            return False
        child_a, child_b = pair
        lca = child_b.parent
        graph = self.state_graphs.get(lca.id)
        if graph is None or child_b.fork_site is None:
            return False
        fork_node = self.icfg.node_of(child_b.fork_site)
        sid = graph.sid_of(child_b.spawn_ctx, fork_node)
        if sid is None:
            return False
        must = self.must_join.get(lca.id, {}).get(sid, frozenset())
        if a.id in must:
            return True
        # a may be joined transitively: child_a fully joined and a
        # fully joined within its own chain down from child_a.
        if child_a.id in must:
            joined = self.fully_joined.get(child_a.id, frozenset())
            return a.id in joined or a is child_a
        return False

    def spawned_at(self, thread: AbstractThread, ctx: Context, fork: Fork) -> List[AbstractThread]:
        return [t for t in self.threads_by_fork.get(fork.id, [])
                if t.parent is thread and t.spawn_ctx == ctx]
