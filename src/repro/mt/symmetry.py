"""Symmetric fork/join loop recognition.

The paper (Section 4.2, Figure 11) uses LLVM's SCEV alias analysis to
correlate a fork loop with its matching join loop: word_count forks N
slaves storing ids into ``tid[i]`` and later joins ``tid[i]`` in a
second, "symmetric" loop. Recognising the pattern lets FSAM treat
the (multi-forked) slave thread as fully joined once the join loop
finishes, so statements after it do not happen in parallel with the
slaves.

Our stand-in recognises the same shape on the IR: a fork in loop L1
storing thread ids into array object A, and a join in a later,
disjoint loop L2 whose handle is loaded from the same A, where A
holds ids of no other fork.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.andersen import AndersenResult
from repro.cfg.cfg import CFG
from repro.graphs.loops import Loop, natural_loops
from repro.ir.instructions import Fork, Join, Load
from repro.ir.module import BasicBlock, Module
from repro.ir.values import MemObject, Temp


class SymmetricPair:
    """A recognised fork-loop/join-loop correlation."""

    def __init__(self, fork: Fork, join: Join, handle_array: MemObject,
                 join_loop: Loop, kill_blocks: List[BasicBlock]) -> None:
        self.fork = fork
        self.join = join
        self.handle_array = handle_array
        self.join_loop = join_loop
        # Blocks at which the joined thread is certainly dead: the join
        # loop's exit targets (not the join statement itself — other
        # slave instances are still live mid-loop).
        self.kill_blocks = kill_blocks

    def __repr__(self) -> str:
        return f"<symmetric fork#{self.fork.id} ~ join#{self.join.id} via {self.handle_array.name}>"


def find_symmetric_pairs(module: Module, andersen: AndersenResult) -> Dict[Tuple[int, int], SymmetricPair]:
    """All symmetric (fork.id, join.id) pairs in *module*."""
    pairs: Dict[Tuple[int, int], SymmetricPair] = {}
    for fn in module.functions.values():
        if fn.is_declaration or not fn.blocks:
            continue
        pairs.update(_pairs_in_function(fn, andersen))
    return pairs


def _pairs_in_function(fn, andersen: AndersenResult) -> Dict[Tuple[int, int], SymmetricPair]:
    cfg = CFG(fn)
    loops = natural_loops(cfg.graph, cfg.entry)
    if not loops:
        return {}

    def innermost_loop(block: BasicBlock) -> Optional[Loop]:
        best: Optional[Loop] = None
        for loop in loops:
            if block in loop.body and (best is None or len(loop.body) < len(best.body)):
                best = loop
        return best

    # Index loads by their dst temp, to trace join handles to arrays.
    load_def: Dict[int, Load] = {}
    for instr in fn.instructions():
        if isinstance(instr, Load):
            load_def[instr.dst.id] = instr

    forks: List[Tuple[Fork, MemObject, Loop]] = []
    joins: List[Tuple[Join, MemObject, Loop]] = []
    for instr in fn.instructions():
        loop = innermost_loop(instr.block)
        if loop is None:
            continue
        if isinstance(instr, Fork) and instr.handle_ptr is not None:
            slots = andersen.pts(instr.handle_ptr)
            if len(slots) == 1:
                forks.append((instr, next(iter(slots)), loop))
        elif isinstance(instr, Join) and isinstance(instr.handle, Temp):
            load = load_def.get(instr.handle.id)
            if load is None:
                continue
            slots = andersen.pts(load.ptr)
            if len(slots) == 1:
                joins.append((instr, next(iter(slots)), loop))

    def dom_depth(block: BasicBlock) -> int:
        depth = 0
        node = block
        while node is not cfg.entry and node in cfg.domtree.idom:
            node = cfg.domtree.idom[node]
            depth += 1
        return depth

    # Match each join loop with the *nearest dominating* fork loop on
    # the same handle array — reused tid arrays (the common Phoenix
    # idiom) make "array holds one fork's ids" too strict, while
    # nearest-dominator matching mirrors what SCEV's induction
    # correlation establishes: the ids the join loop reads are the
    # ones the immediately preceding fork loop stored.
    result: Dict[Tuple[int, int], SymmetricPair] = {}
    for join, join_array, join_loop in joins:
        best = None
        best_depth = -1
        for fork, fork_array, fork_loop in forks:
            if fork_array is not join_array:
                continue
            if fork_loop.header is join_loop.header:
                continue  # the same loop: not a fork-then-join-all shape
            if fork_loop.body & join_loop.body:
                continue  # nested/overlapping loops
            # The fork loop must complete before the join loop starts.
            if not cfg.domtree.dominates(fork_loop.header, join_loop.header):
                continue
            tid = andersen.thread_objects.get(fork.id)
            if tid is None or tid not in andersen.pts(fork_array):
                continue
            depth = dom_depth(fork_loop.header)
            if depth > best_depth:
                best = (fork, fork_loop)
                best_depth = depth
        if best is not None:
            fork, _fork_loop = best
            kill_blocks = _loop_exit_blocks(cfg, join_loop)
            result[(fork.id, join.id)] = SymmetricPair(fork, join, join_array,
                                                       join_loop, kill_blocks)
    return result


def _loop_exit_blocks(cfg: CFG, loop: Loop) -> List[BasicBlock]:
    """Blocks outside *loop* that a loop block branches to."""
    exits: List[BasicBlock] = []
    for block in loop.body:
        for succ in cfg.successors(block):
            if succ not in loop.body and succ not in exits:
                exits.append(succ)
    return exits
