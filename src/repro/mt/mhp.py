"""The interleaving (may-happen-in-parallel) analysis — paper 3.3.1.

A forward data-flow problem per thread over its context-expanded
state graph, computing I(t, c, s): the set of threads that may run
concurrently when thread t executes statement s under context c.

Rule correspondence (Figure 7):

- [I-DESCENDANT] — the transfer at a fork state adds the spawned
  thread and all of its (transitive) descendants; the spawnee's entry
  seed contains all of its ancestors.
- [I-SIBLING]    — the entry seed of each thread also contains every
  sibling not ordered by happens-before (either way).
- [I-JOIN]       — the transfer at a join state (or at a symmetric
  join loop's exits) removes the certainly-joined closure.
- [I-INTRA]/[I-CALL]/[I-RET] — the state graph's edges already match
  calls and returns context-sensitively, so plain forward propagation
  over it realises all three.

Two statements are MHP when each one's I-set contains the other's
thread — or when they belong to the same multi-forked thread.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.graphs.dataflow import DataflowProblem, solve_forward
from repro.ir.instructions import Fork, Instruction
from repro.mt.threads import AbstractThread, ThreadModel
from repro.obs import NULL_OBS, Observer
from repro.trace import NULL_TRACER, Tracer


class MHPOracle:
    """The query interface the value-flow and lock phases consume."""

    def __init__(self) -> None:
        # Tallies flushed to the observer at end of run (repro.obs).
        self.pair_queries = 0
        self.pair_cache_hits = 0
        # (s1.id, s2.id) -> first MHP instance pair or None; shared by
        # may_happen_in_parallel and the admission-verdict path so a
        # witness found while answering the boolean query is never
        # recomputed by a second instance-pair enumeration.
        self._witness_cache: Dict[Tuple[int, int], Optional[Tuple]] = {}

    def may_happen_in_parallel(self, s1: Instruction, s2: Instruction) -> bool:
        raise NotImplementedError

    def parallel_instance_pairs(self, s1: Instruction, s2: Instruction):
        """Iterate MHP instance pairs ((t1, sid1), (t2, sid2))."""
        raise NotImplementedError

    def mhp_witness(self, s1: Instruction, s2: Instruction) -> Optional[Tuple]:
        """The first MHP instance pair for (s1, s2), or None — cached
        symmetrically (the reversed query returns the swapped pair)."""
        key = (s1.id, s2.id)
        if key in self._witness_cache:
            return self._witness_cache[key]
        pair = next(iter(self.parallel_instance_pairs(s1, s2)), None)
        self._witness_cache[key] = pair
        self._witness_cache[(s2.id, s1.id)] = \
            (pair[1], pair[0]) if pair is not None else None
        return pair

    def region_key(self, instr: Instruction):
        """A hashable interference-region key: two statements with
        equal keys receive identical MHP verdicts against *any* third
        statement, so batched clients (the value-flow phase) may query
        one representative per region pair. The base default is the
        statement's own identity — always sound, no batching."""
        return ("instr", instr.id)

    def flush_obs(self, obs: Observer) -> None:
        obs.count("mhp.pair_queries", self.pair_queries)
        obs.count("mhp.pair_cache_hits", self.pair_cache_hits)


class InterleavingAnalysis(MHPOracle):
    """FSAM's flow- and context-sensitive interleaving analysis.

    With an enabled tracer, the per-thread classifications behind the
    I-sets are emitted as events: ``mhp.seed`` (the [I-DESCENDANT]
    ancestors and [I-SIBLING] unordered siblings seeding each thread's
    entry), ``mhp.spawn`` (threads a fork state adds), and
    ``mhp.kill`` (the certainly-joined closure an [I-JOIN] state
    removes)."""

    def __init__(self, model: ThreadModel,
                 tracer: Tracer = NULL_TRACER) -> None:
        super().__init__()
        self.model = model
        self.tracer = tracer
        # thread id -> sid -> frozenset of concurrent thread ids.
        self.interleaving: Dict[int, Dict[int, FrozenSet[int]]] = {}
        self._pair_cache: Dict[Tuple[int, int], bool] = {}
        self.dataflow_iterations = 0
        self._compute()

    # -- seeds ----------------------------------------------------------------

    def _entry_seed(self, thread: AbstractThread) -> FrozenSet[int]:
        seed: Set[int] = set()
        # [I-DESCENDANT]: every (transitive) spawner may still be running.
        seed.update(t.id for t in thread.ancestors())
        # [I-SIBLING]: unordered siblings may overlap.
        for other in self.model.threads:
            if self.model.siblings(thread, other):
                if not self.model.happens_before(thread, other) and \
                        not self.model.happens_before(other, thread):
                    seed.add(other.id)
        return frozenset(seed)

    # -- data-flow --------------------------------------------------------------

    def _compute(self) -> None:
        tracing = self.tracer.enabled
        for thread in self.model.threads:
            graph = self.model.state_graphs[thread.id]
            kills = self.model.kills_at.get(thread.id, {})
            seed = self._entry_seed(thread)
            if tracing:
                ancestors = {t.id for t in thread.ancestors()}
                self.tracer.emit(
                    "mhp.seed", thread=thread.id,
                    ancestors=sorted(ancestors),
                    siblings=sorted(set(seed) - ancestors))

            spawn_adds: Dict[int, FrozenSet[int]] = {}
            for sid, fork in graph.fork_states():
                ctx, _node = graph.state(sid)
                added: Set[int] = set()
                for child in self.model.spawned_at(thread, ctx, fork):
                    added.add(child.id)
                    added.update(t.id for t in child.descendants())
                if added:
                    spawn_adds[sid] = frozenset(added)
            if tracing:
                for sid, added_ids in sorted(spawn_adds.items()):
                    self.tracer.emit("mhp.spawn", thread=thread.id, sid=sid,
                                     spawned=sorted(added_ids))
                for sid, killed in sorted(kills.items()):
                    self.tracer.emit("mhp.kill", thread=thread.id, sid=sid,
                                     joined=sorted(killed))

            def transfer(sid: int, fact: FrozenSet[int]) -> FrozenSet[int]:
                add = spawn_adds.get(sid)
                if add:
                    fact = fact | add
                kill = kills.get(sid)
                if kill:
                    fact = fact - kill
                return fact

            problem = DataflowProblem(
                graph.graph,
                entry_fact=lambda sid: seed,
                bottom=lambda: frozenset(),
                transfer=transfer,
                meet=lambda a, b: a | b,
                equal=lambda a, b: a == b,
            )
            dstats: Dict[str, int] = {}
            self.interleaving[thread.id] = solve_forward(
                problem, [graph.entry_sid], stats=dstats)
            self.dataflow_iterations += dstats.get("iterations", 0)

    # -- queries ----------------------------------------------------------------

    def interleaving_at(self, thread: AbstractThread, sid: int) -> FrozenSet[int]:
        """I(t, c, s) for the state *sid* of *thread*."""
        return self.interleaving.get(thread.id, {}).get(sid, frozenset())

    def _instances(self, instr: Instruction) -> List[Tuple[AbstractThread, int]]:
        result = []
        for thread in self.model.threads:
            graph = self.model.state_graphs[thread.id]
            for sid in graph.states_of_instr(instr):
                result.append((thread, sid))
        return result

    def parallel_instance_pairs(self, s1: Instruction, s2: Instruction):
        inst1 = self._instances(s1)
        inst2 = self._instances(s2)
        for t1, sid1 in inst1:
            i1 = self.interleaving[t1.id].get(sid1, frozenset())
            for t2, sid2 in inst2:
                if t1 is t2:
                    if t1.multi_forked:
                        yield (t1, sid1), (t2, sid2)
                    continue
                if t2.id in i1 and t1.id in self.interleaving[t2.id].get(sid2, frozenset()):
                    yield (t1, sid1), (t2, sid2)

    def may_happen_in_parallel(self, s1: Instruction, s2: Instruction) -> bool:
        self.pair_queries += 1
        key = (s1.id, s2.id)
        cached = self._pair_cache.get(key)
        if cached is not None:
            self.pair_cache_hits += 1
            return cached
        # Route through mhp_witness so the witnessing instance pair is
        # cached for the admission-verdict path — the old code threw
        # it away and re-enumerated on every admitted edge.
        result = self.mhp_witness(s1, s2) is not None
        self._pair_cache[key] = result
        self._pair_cache[(s2.id, s1.id)] = result
        return result

    def region_key(self, instr: Instruction):
        """Instances collapsed to (thread, multi-forked, I-set)
        triples: the MHP verdict formula — same multi-forked thread,
        or mutual I-set membership — reads nothing else about the
        statement, so equal keys guarantee equal verdicts."""
        entries = []
        for thread, sid in self._instances(instr):
            iset = self.interleaving[thread.id].get(sid, frozenset())
            entries.append((thread.id, thread.multi_forked, iset))
        return frozenset(entries)

    def flush_obs(self, obs: Observer) -> None:
        super().flush_obs(obs)
        obs.count("mhp.dataflow_iterations", self.dataflow_iterations)
        obs.gauge("mhp.threads", len(self.model.threads))


class CoarsePCGMhp(MHPOracle):
    """The No-Interleaving fallback (paper Section 4.3): a
    procedure-level MHP in the spirit of PCG — it knows which thread
    may execute which procedure but performs no flow-sensitive join or
    happens-before reasoning, so any two statements executed by
    distinct threads (or by one multi-forked thread) are deemed
    parallel."""

    def __init__(self, model: ThreadModel) -> None:
        super().__init__()
        self.model = model
        self._pair_cache: Dict[Tuple[int, int], bool] = {}

    def _threads_of(self, instr: Instruction) -> List[AbstractThread]:
        result = []
        for thread in self.model.threads:
            graph = self.model.state_graphs[thread.id]
            if graph.states_of_instr(instr):
                result.append(thread)
        return result

    def may_happen_in_parallel(self, s1: Instruction, s2: Instruction) -> bool:
        self.pair_queries += 1
        key = (s1.id, s2.id)
        cached = self._pair_cache.get(key)
        if cached is not None:
            self.pair_cache_hits += 1
            return cached
        result = False
        for t1 in self._threads_of(s1):
            for t2 in self._threads_of(s2):
                if t1 is t2:
                    if t1.multi_forked:
                        result = True
                        break
                else:
                    result = True
                    break
            if result:
                break
        self._pair_cache[key] = result
        self._pair_cache[(s2.id, s1.id)] = result
        return result

    def parallel_instance_pairs(self, s1: Instruction, s2: Instruction):
        for t1 in self.model.threads:
            g1 = self.model.state_graphs[t1.id]
            for sid1 in g1.states_of_instr(s1):
                for t2 in self.model.threads:
                    g2 = self.model.state_graphs[t2.id]
                    for sid2 in g2.states_of_instr(s2):
                        if t1 is t2 and not t1.multi_forked:
                            continue
                        yield (t1, sid1), (t2, sid2)

    def region_key(self, instr: Instruction):
        """This oracle's verdict reads only which threads may execute
        the statement (plus their multi-forked flags), so that set is
        the region key."""
        return frozenset(
            (t.id, t.multi_forked) for t in self._threads_of(instr))
