"""Value-flow analysis: thread-aware def-use edges ([THREAD-VF]).

For every MHP store-load or store-store pair whose pointers share a
pointed-to object o (the aliased pairs of Figure 2), add a def-use
edge  store --o--> target  to the DUG, unless the lock analysis can
prove the pair a non-interference lock pair.

The stores participating in such interference are recorded on the
DUG: the sparse solver demotes their strong updates on the contested
object (a concurrent reader may observe the pre-store value).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.instructions import Instruction, Load, Store
from repro.ir.values import MemObject
from repro.memssa.builder import MemorySSABuilder
from repro.memssa.dug import DUG
from repro.mt.locks import LockAnalysis
from repro.mt.mhp import MHPOracle
from repro.obs import NULL_OBS, Observer


class ValueFlowStats:
    """Counters surfaced in benchmark output (Figure 12 analysis).

    Kept as a compatibility shim over the ``valueflow.*`` observer
    counters: existing consumers (harness tables, result API) read
    these attributes, while new code should prefer
    ``Observer.counter("valueflow.edges_added")`` etc."""

    def __init__(self) -> None:
        self.candidate_pairs = 0
        self.mhp_pairs = 0
        self.lock_filtered = 0
        self.edges_added = 0

    def __repr__(self) -> str:
        return (f"<value-flow: {self.candidate_pairs} candidates, "
                f"{self.mhp_pairs} MHP, {self.lock_filtered} lock-filtered, "
                f"{self.edges_added} edges>")


def _index_accesses(builder: MemorySSABuilder):
    """Per-object store and access (store|load) instruction lists."""
    stores_on: Dict[int, List[Store]] = {}
    accesses_on: Dict[int, List[Instruction]] = {}
    objects: Dict[int, MemObject] = {}
    module = builder.module
    for fn in module.functions.values():
        for instr in fn.instructions():
            if isinstance(instr, Store):
                for obj in builder.chis.get(instr.id, ()):
                    objects[obj.id] = obj
                    stores_on.setdefault(obj.id, []).append(instr)
                    accesses_on.setdefault(obj.id, []).append(instr)
            elif isinstance(instr, Load):
                for obj in builder.mus.get(instr.id, ()):
                    objects[obj.id] = obj
                    accesses_on.setdefault(obj.id, []).append(instr)
    return stores_on, accesses_on, objects


def add_thread_aware_edges(dug: DUG, builder: MemorySSABuilder, mhp: MHPOracle,
                           locks: Optional[LockAnalysis] = None,
                           alias_filtering: bool = True,
                           obs: Observer = NULL_OBS) -> ValueFlowStats:
    """Run [THREAD-VF]; returns statistics.

    ``alias_filtering=False`` is the No-Value-Flow ablation (paper
    Section 4.3): the ``o in AS(*p, *q)`` premise is disregarded, so
    every MHP store x access pair contributes edges for every object
    the store may write — exactly the spurious-edge blowup the paper
    measures.
    """
    stats = ValueFlowStats()
    stores_on, accesses_on, objects = _index_accesses(builder)

    def consider(store: Store, target: Instruction, obj: MemObject) -> None:
        stats.candidate_pairs += 1
        if not mhp.may_happen_in_parallel(store, target):
            return
        stats.mhp_pairs += 1
        if locks is not None and locks.filters(store, target, obj, mhp):
            stats.lock_filtered += 1
            return
        src = dug.stmt_node(store)
        dst = dug.stmt_node(target)
        if dug.add_mem_edge(src, obj, dst, thread_aware=True):
            stats.edges_added += 1
        dug.mark_interfering(src, obj)
        if isinstance(target, Store) and obj in builder.chis.get(target.id, ()):
            dug.mark_interfering(dst, obj)

    if alias_filtering:
        for obj_id, stores in stores_on.items():
            obj = objects[obj_id]
            accesses = accesses_on.get(obj_id, [])
            for store in stores:
                for target in accesses:
                    if target is store:
                        continue
                    consider(store, target, obj)
    else:
        all_stores = sorted({s.id: s for ss in stores_on.values() for s in ss}.values(),
                            key=lambda s: s.id)
        all_accesses = sorted({a.id: a for aa in accesses_on.values() for a in aa}.values(),
                              key=lambda a: a.id)
        for store in all_stores:
            for target in all_accesses:
                if target is store:
                    continue
                for obj in builder.chis.get(store.id, ()):
                    consider(store, target, obj)
    obs.count("valueflow.candidate_pairs", stats.candidate_pairs)
    obs.count("valueflow.mhp_pairs", stats.mhp_pairs)
    obs.count("valueflow.lock_filtered", stats.lock_filtered)
    obs.count("valueflow.edges_added", stats.edges_added)
    return stats
