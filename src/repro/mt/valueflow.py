"""Value-flow analysis: thread-aware def-use edges ([THREAD-VF]).

For every MHP store-load or store-store pair whose pointers share a
pointed-to object o (the aliased pairs of Figure 2), add a def-use
edge  store --o--> target  to the DUG, unless the lock analysis can
prove the pair a non-interference lock pair.

The stores participating in such interference are recorded on the
DUG: the sparse solver demotes their strong updates on the contested
object (a concurrent reader may observe the pre-store value).

MHP queries are issued per *interference region pair*, not per
statement pair: statements are grouped by the oracle's
:meth:`~repro.mt.mhp.MHPOracle.region_key` (equal keys guarantee
identical verdicts against anything), one representative pair per
region pair hits the oracle, and the verdict settles every pair in
the cross product. ``valueflow.mhp_cache_hits`` counts the pairs
decided without a fresh oracle query. The reported statistics are
unchanged by batching: candidate/mhp/lock/edge counts are per
statement pair exactly as if each had been queried individually.

With an enabled :class:`~repro.trace.Tracer`, every candidate pair's
verdict is emitted as a ``vf.pair`` event — ``mhp-refuted``,
``lock-filtered`` (with the witnessing lock), or ``edge-added`` (with
the MHP witness threads) — and admission verdicts for added edges are
recorded on the DUG for ``repro explain`` to cite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import Instruction, Load, Store
from repro.ir.values import MemObject
from repro.memssa.builder import MemorySSABuilder
from repro.memssa.dug import DUG
from repro.mt.locks import LockAnalysis
from repro.mt.mhp import MHPOracle
from repro.obs import NULL_OBS, Observer
from repro.trace import NULL_TRACER, Tracer


class ValueFlowStats:
    """Counters surfaced in benchmark output (Figure 12 analysis).

    Kept as a compatibility shim over the ``valueflow.*`` observer
    counters: existing consumers (harness tables, result API) read
    these attributes, while new code should prefer
    ``Observer.counter("valueflow.edges_added")`` etc. The attributes
    are assigned exactly once, from the same local tallies that feed
    ``obs.count`` — one source of truth, so the shim and the observer
    can never drift (pinned by ``tests/fsam/test_profile.py``)."""

    def __init__(self, candidate_pairs: int = 0, mhp_pairs: int = 0,
                 lock_filtered: int = 0, edges_added: int = 0,
                 mhp_cache_hits: int = 0) -> None:
        self.candidate_pairs = candidate_pairs
        self.mhp_pairs = mhp_pairs
        self.lock_filtered = lock_filtered
        self.edges_added = edges_added
        self.mhp_cache_hits = mhp_cache_hits

    def __repr__(self) -> str:
        return (f"<value-flow: {self.candidate_pairs} candidates, "
                f"{self.mhp_pairs} MHP, {self.lock_filtered} lock-filtered, "
                f"{self.edges_added} edges>")


def _index_accesses(builder: MemorySSABuilder):
    """Per-object store and access (store|load) instruction lists."""
    stores_on: Dict[int, List[Store]] = {}
    accesses_on: Dict[int, List[Instruction]] = {}
    objects: Dict[int, MemObject] = {}
    module = builder.module
    for fn in module.functions.values():
        for instr in fn.instructions():
            if isinstance(instr, Store):
                for obj in builder.chis.get(instr.id, ()):
                    objects[obj.id] = obj
                    stores_on.setdefault(obj.id, []).append(instr)
                    accesses_on.setdefault(obj.id, []).append(instr)
            elif isinstance(instr, Load):
                for obj in builder.mus.get(instr.id, ()):
                    objects[obj.id] = obj
                    accesses_on.setdefault(obj.id, []).append(instr)
    return stores_on, accesses_on, objects


def _pair_fields(store: Store, target: Instruction,
                 obj: MemObject) -> Dict[str, object]:
    return {"store_id": store.id, "store_line": store.line,
            "target_id": target.id, "target_line": target.line,
            "obj": obj.name, "obj_id": obj.id}


def _admission_verdict(mhp: MHPOracle, locks: Optional[LockAnalysis],
                       store: Store, target: Instruction,
                       obj: MemObject) -> Dict[str, object]:
    """Why this [THREAD-VF] edge was admitted: the witnessing MHP
    instance pair plus the lock status that failed to filter it."""
    info = _pair_fields(store, target, obj)
    pair = mhp.mhp_witness(store, target)
    if pair is not None:
        (t1, _sid1), (t2, _sid2) = pair
        info["mhp"] = f"t{t1.id}||t{t2.id}"
        if locks is None:
            info["lock"] = "lock analysis off"
        elif locks.commonly_protected(pair[0], pair[1]):
            # Both sides hold a common lock, yet the pair survived
            # Definition 6: the store is a span tail and the target a
            # span head, so the value really crosses the lock.
            info["lock"] = "common lock, but span tail->head (real flow)"
        else:
            info["lock"] = "no common lock"
    return info


def add_thread_aware_edges(dug: DUG, builder: MemorySSABuilder, mhp: MHPOracle,
                           locks: Optional[LockAnalysis] = None,
                           alias_filtering: bool = True,
                           obs: Observer = NULL_OBS,
                           tracer: Tracer = NULL_TRACER) -> ValueFlowStats:
    """Run [THREAD-VF]; returns statistics.

    ``alias_filtering=False`` is the No-Value-Flow ablation (paper
    Section 4.3): the ``o in AS(*p, *q)`` premise is disregarded, so
    every MHP store x access pair contributes edges for every object
    the store may write — exactly the spurious-edge blowup the paper
    measures.
    """
    stores_on, accesses_on, objects = _index_accesses(builder)
    tracing = tracer.enabled
    candidate_pairs = mhp_pairs = lock_filtered = edges_added = 0
    mhp_cache_hits = 0

    # Region keys per statement, computed once (the interleaving
    # oracle's key walks every instance of the statement).
    region_of: Dict[int, object] = {}

    def key_of(instr: Instruction):
        key = region_of.get(instr.id)
        if key is None:
            key = region_of[instr.id] = mhp.region_key(instr)
        return key

    # (store region, access region) -> MHP verdict, symmetric.
    region_verdicts: Dict[Tuple, bool] = {}

    def region_mhp(ks, ka, rep_store: Store, rep_target: Instruction,
                   npairs: int) -> bool:
        """One oracle query settles all *npairs* pairs in the region
        cross product; every pair beyond the representative (or all of
        them, on a memoised verdict) counts as a cache hit."""
        nonlocal mhp_cache_hits
        verdict = region_verdicts.get((ks, ka))
        if verdict is None:
            verdict = mhp.may_happen_in_parallel(rep_store, rep_target)
            region_verdicts[(ks, ka)] = verdict
            region_verdicts[(ka, ks)] = verdict
            mhp_cache_hits += npairs - 1
        else:
            mhp_cache_hits += npairs
        return verdict

    def admit(store: Store, target: Instruction, obj: MemObject,
              target_is_chi_store: bool) -> None:
        """Process one MHP pair: lock filtering, edge insertion,
        interference marking. The caller established the MHP verdict
        (directly or via its region)."""
        nonlocal mhp_pairs, lock_filtered, edges_added
        mhp_pairs += 1
        if locks is not None and locks.filters(store, target, obj, mhp):
            lock_filtered += 1
            if tracing:
                witness = locks.filter_witness(store, target, obj, mhp)
                tracer.emit("vf.pair", verdict="lock-filtered",
                            lock=witness.name if witness is not None else None,
                            **_pair_fields(store, target, obj))
            return
        src = dug.stmt_node(store)
        dst = dug.stmt_node(target)
        if dug.add_mem_edge(src, obj, dst, thread_aware=True):
            edges_added += 1
            if tracing:
                info = _admission_verdict(mhp, locks, store, target, obj)
                dug.set_thread_edge_info(src, obj, dst, info)
                tracer.emit("vf.pair", verdict="edge-added", **info)
        dug.mark_interfering(src, obj)
        if target_is_chi_store:
            dug.mark_interfering(dst, obj)

    if alias_filtering:
        for obj_id, stores in stores_on.items():
            obj = objects[obj_id]
            accesses = accesses_on.get(obj_id, [])
            sgroups: Dict[object, List[Store]] = {}
            for store in stores:
                sgroups.setdefault(key_of(store), []).append(store)
            agroups: Dict[object, List[Instruction]] = {}
            for access in accesses:
                agroups.setdefault(key_of(access), []).append(access)
            for ks, sgroup in sgroups.items():
                for ka, agroup in agroups.items():
                    # Self-pairs (target is store) are skipped; when
                    # the regions coincide every store of sgroup also
                    # sits in agroup (stores are accesses on obj), so
                    # the cross product loses exactly len(sgroup).
                    npairs = len(sgroup) * len(agroup) - \
                        (len(sgroup) if ks == ka else 0)
                    if npairs <= 0:
                        continue
                    candidate_pairs += npairs
                    rep_store = sgroup[0]
                    rep_target = next(
                        a for a in agroup if a is not rep_store)
                    if not region_mhp(ks, ka, rep_store, rep_target, npairs):
                        if tracing:
                            # Keep the per-pair event stream complete:
                            # trace consumers reconcile vf.pair events
                            # against candidate_pairs.
                            for store in sgroup:
                                for target in agroup:
                                    if target is store:
                                        continue
                                    tracer.emit(
                                        "vf.pair", verdict="mhp-refuted",
                                        **_pair_fields(store, target, obj))
                        continue
                    for store in sgroup:
                        for target in agroup:
                            if target is store:
                                continue
                            # A Store lands in accesses_on[obj] only
                            # via its chi on obj, so the chi lookup
                            # the old inner loop repeated is free.
                            admit(store, target, obj,
                                  isinstance(target, Store))
    else:
        all_stores = sorted({s.id: s for ss in stores_on.values() for s in ss}.values(),
                            key=lambda s: s.id)
        all_accesses = sorted({a.id: a for aa in accesses_on.values() for a in aa}.values(),
                              key=lambda a: a.id)
        for store in all_stores:
            ks = key_of(store)
            store_objs = list(builder.chis.get(store.id, ()))
            if not store_objs:
                continue
            nobjs = len(store_objs)
            for target in all_accesses:
                if target is store:
                    continue
                candidate_pairs += nobjs
                if not region_mhp(ks, key_of(target), store, target, nobjs):
                    if tracing:
                        for obj in store_objs:
                            tracer.emit("vf.pair", verdict="mhp-refuted",
                                        **_pair_fields(store, target, obj))
                    continue
                target_chis = builder.chis.get(target.id, ()) \
                    if isinstance(target, Store) else ()
                for obj in store_objs:
                    admit(store, target, obj, obj in target_chis)
    # One source of truth: the shim and the observer counters are both
    # assigned from the same locals, in one place.
    stats = ValueFlowStats(candidate_pairs=candidate_pairs,
                           mhp_pairs=mhp_pairs,
                           lock_filtered=lock_filtered,
                           edges_added=edges_added,
                           mhp_cache_hits=mhp_cache_hits)
    obs.count("valueflow.candidate_pairs", stats.candidate_pairs)
    obs.count("valueflow.mhp_pairs", stats.mhp_pairs)
    obs.count("valueflow.lock_filtered", stats.lock_filtered)
    obs.count("valueflow.edges_added", stats.edges_added)
    obs.count("valueflow.mhp_cache_hits", stats.mhp_cache_hits)
    return stats
