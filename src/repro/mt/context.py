"""Calling contexts.

A context is a stack of callsite identities from a thread's start
procedure down to the current statement (paper Section 3.1:
``c = [cs0, ..., csn]``). Callsites inside call-graph cycles are not
pushed, which keeps contexts finite (context-insensitive recursion).
"""

from __future__ import annotations

from typing import Tuple


class Context(Tuple[int, ...]):
    """An immutable callsite-id stack. Subclasses tuple so it hashes
    and compares structurally for free."""

    __slots__ = ()

    EMPTY: "Context"

    def push(self, site_id: int) -> "Context":
        return Context(self + (site_id,))

    def pop(self) -> "Context":
        if not self:
            raise ValueError("pop from empty context")
        return Context(self[:-1])

    def peek(self) -> int:
        if not self:
            raise ValueError("peek on empty context")
        return self[-1]

    def __repr__(self) -> str:
        return "[" + ",".join(str(i) for i in self) + "]"


Context.EMPTY = Context()
