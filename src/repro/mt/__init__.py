"""Thread interference analyses (the heart of FSAM, paper Section 3).

- :mod:`repro.mt.context`  — calling-context stacks.
- :mod:`repro.mt.threads`  — the static thread model: abstract threads
  ([T-FORK]/[T-JOIN]/[T-SIBLING]), multi-forked threads
  (Definition 1), per-thread context-expanded state graphs, must-join
  analysis, happens-before (Definition 2).
- :mod:`repro.mt.mhp`      — the interleaving analysis (Figure 7) and
  MHP pair queries.
- :mod:`repro.mt.locks`    — lock-release spans, span heads/tails,
  non-interference lock pairs (Definitions 3-6).
- :mod:`repro.mt.valueflow`— [THREAD-VF]: thread-aware def-use edges.
- :mod:`repro.mt.symmetry` — the symmetric fork/join loop matcher
  standing in for the paper's SCEV-based correlation (Figure 11).
"""

from repro.mt.context import Context
from repro.mt.threads import AbstractThread, ThreadModel, ThreadStateGraph
from repro.mt.mhp import InterleavingAnalysis, MHPOracle, CoarsePCGMhp
from repro.mt.locks import LockAnalysis, LockSpan
from repro.mt.valueflow import add_thread_aware_edges

__all__ = [
    "Context",
    "AbstractThread", "ThreadModel", "ThreadStateGraph",
    "InterleavingAnalysis", "MHPOracle", "CoarsePCGMhp",
    "LockAnalysis", "LockSpan",
    "add_thread_aware_edges",
]
