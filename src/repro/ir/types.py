"""IR types.

The type system is intentionally small: integers, pointers, structs,
arrays, functions, plus the two Pthreads handle types (thread ids and
mutexes). Pointer analysis only needs enough typing to resolve field
offsets and to distinguish pointers from scalars.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class Type:
    """Base class for IR types. Types are compared structurally."""

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, type(self)) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.key()))

    def key(self) -> tuple:
        """Structural identity key; subclasses override."""
        return ()


class IntType(Type):
    """A machine integer; width is irrelevant to pointer analysis."""

    def __repr__(self) -> str:
        return "int"


class VoidType(Type):
    """The absence of a value (function returns only)."""

    def __repr__(self) -> str:
        return "void"


class ThreadType(Type):
    """An opaque pthread_t thread handle."""

    def __repr__(self) -> str:
        return "pthread_t"


class LockType(Type):
    """An opaque pthread_mutex_t."""

    def __repr__(self) -> str:
        return "mutex_t"


class CondType(Type):
    """An opaque pthread_cond_t (extension beyond the paper, which
    treats signal/wait soundly as no-ops)."""

    def __repr__(self) -> str:
        return "cond_t"


class BarrierType(Type):
    """An opaque pthread_barrier_t (extension; analysed soundly as a
    no-op, executed as a real rendezvous by the interpreter)."""

    def __repr__(self) -> str:
        return "barrier_t"


class PointerType(Type):
    """A pointer to *pointee*."""

    def __init__(self, pointee: Type) -> None:
        self.pointee = pointee

    def key(self) -> tuple:
        return (self.pointee,)

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"


class StructType(Type):
    """A named struct with ordered (name, type) fields.

    Structs are *nominal*: two structs with the same name are the same
    type (MiniC forbids redefinition), which lets recursive structs
    (linked lists, trees) be expressed without infinite structural
    comparison.
    """

    def __init__(self, name: str, fields: Optional[List[Tuple[str, Type]]] = None) -> None:
        self.name = name
        self.fields: List[Tuple[str, Type]] = fields or []

    def key(self) -> tuple:
        return (self.name,)

    def field_index(self, name: str) -> int:
        """Index of field *name*; raises KeyError if absent."""
        for i, (fname, _) in enumerate(self.fields):
            if fname == name:
                return i
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def field_type(self, index: int) -> Type:
        return self.fields[index][1]

    def __repr__(self) -> str:
        return f"struct {self.name}"


class ArrayType(Type):
    """A fixed-size array. Arrays are analysed monolithically
    (paper Section 4.2): all elements share one abstract object."""

    def __init__(self, element: Type, count: int) -> None:
        self.element = element
        self.count = count

    def key(self) -> tuple:
        return (self.element, self.count)

    def __repr__(self) -> str:
        return f"{self.element!r}[{self.count}]"


class FunctionType(Type):
    """A function signature."""

    def __init__(self, ret: Type, params: List[Type]) -> None:
        self.ret = ret
        self.params = params

    def key(self) -> tuple:
        return (self.ret, tuple(self.params))

    def __repr__(self) -> str:
        params = ", ".join(repr(p) for p in self.params)
        return f"{self.ret!r}({params})"


INT = IntType()
VOID = VoidType()
THREAD = ThreadType()
LOCK = LockType()


def pointer_to(ty: Type) -> PointerType:
    """Convenience constructor for ``ty*``."""
    return PointerType(ty)
