"""IR verifier.

Checks the structural invariants every analysis in this package relies
on: blocks end in exactly one terminator, temporaries obey SSA (unique
definition), phi instructions lead their block and name only actual
predecessors, and operand parent links are consistent.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.instructions import Branch, Instruction, Jump, Phi, Ret
from repro.ir.module import BasicBlock, Module
from repro.ir.values import Function, Temp


class VerificationError(Exception):
    """Raised when a module violates an IR invariant."""


def _block_successors(block: BasicBlock) -> List[BasicBlock]:
    term = block.terminator
    if isinstance(term, Branch):
        return [term.then_block, term.else_block]
    if isinstance(term, Jump):
        return [term.target]
    return []


def verify_function(fn: Function) -> None:
    """Verify one function; raises :class:`VerificationError`."""
    if fn.is_declaration:
        return
    if not fn.blocks:
        raise VerificationError(f"{fn.name}: no basic blocks")

    defined: Dict[Temp, Instruction] = {}
    preds: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in fn.blocks}

    for block in fn.blocks:
        if block.function is not fn:
            raise VerificationError(f"{fn.name}/{block.label}: bad function back-pointer")
        term = block.terminator
        if term is None:
            raise VerificationError(f"{fn.name}/{block.label}: missing terminator")
        for i, instr in enumerate(block.instructions):
            if instr.block is not block:
                raise VerificationError(f"{fn.name}/{block.label}: instruction {instr!r} has bad block pointer")
            if instr.is_terminator() and i != len(block.instructions) - 1:
                raise VerificationError(f"{fn.name}/{block.label}: terminator {instr!r} not last")
            dst = instr.defined_temp()
            if dst is not None:
                if dst in defined:
                    raise VerificationError(
                        f"{fn.name}: temp {dst!r} defined twice ({defined[dst]!r} and {instr!r})")
                defined[dst] = instr
        for succ in _block_successors(block):
            if succ not in preds:
                raise VerificationError(
                    f"{fn.name}/{block.label}: branch to foreign block {succ.label}")
            preds[succ].add(block)

    for block in fn.blocks:
        seen_non_phi = False
        for instr in block.instructions:
            if isinstance(instr, Phi):
                if seen_non_phi:
                    raise VerificationError(
                        f"{fn.name}/{block.label}: phi {instr!r} after non-phi instruction")
                incoming_blocks = {b for _, b in instr.incomings}
                if incoming_blocks != preds[block]:
                    raise VerificationError(
                        f"{fn.name}/{block.label}: phi {instr!r} incomings {sorted(b.label for b in incoming_blocks)} "
                        f"!= predecessors {sorted(b.label for b in preds[block])}")
            else:
                seen_non_phi = True

    # Uses of temps must be defined somewhere (params count as defs).
    known = set(defined) | set(fn.params)
    for block in fn.blocks:
        for instr in block.instructions:
            for op in instr.operands():
                if isinstance(op, Temp) and op not in known:
                    raise VerificationError(
                        f"{fn.name}/{block.label}: use of undefined temp {op!r} in {instr!r}")


def verify_module(module: Module) -> None:
    """Verify every function in *module*."""
    for fn in module.functions.values():
        verify_function(fn)
