"""IR values: temporaries, constants, functions, and abstract memory objects.

The value universe follows the paper's partial-SSA split: ``Temp``s are
the top-level variables ``T`` (kept in registers, thread-local), while
``MemObject``s are the address-taken variables / abstract heap objects
``A``, only ever accessed through loads and stores.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Optional, TYPE_CHECKING

from repro.ir.types import Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.ir.module import BasicBlock, Module


class Value:
    """Base class of everything an instruction may reference."""

    def __init__(self, name: str, ty: Type) -> None:
        self.name = name
        self.type = ty

    def __repr__(self) -> str:
        return self.name


class Temp(Value):
    """A top-level (register) variable; unique definition in SSA form."""

    _ids = itertools.count()

    def __init__(self, name: str, ty: Type) -> None:
        super().__init__(name, ty)
        self.id = next(Temp._ids)

    def __repr__(self) -> str:
        return f"%{self.name}"


class Constant(Value):
    """An integer constant or the null pointer."""

    def __init__(self, value: int, ty: Type, is_null: bool = False) -> None:
        super().__init__(str(value) if not is_null else "null", ty)
        self.value = value
        self.is_null = is_null

    @classmethod
    def null(cls, ty: Type) -> "Constant":
        return cls(0, ty, is_null=True)

    def __repr__(self) -> str:
        return "null" if self.is_null else str(self.value)


class ObjectKind(enum.Enum):
    """The storage class of an abstract memory object.

    The kind decides singleton-ness, which gates strong updates in the
    sparse solver (paper Figure 10: heap, arrays, and locals of
    recursive functions are excluded from ``singletons``).
    """

    GLOBAL = "global"
    STACK = "stack"
    HEAP = "heap"
    FUNCTION = "function"
    DUMMY = "dummy"  # models unknown/external memory


class MemObject(Value):
    """An address-taken abstract object (a member of ``A``).

    One object is created per allocation site (paper Section 4.2):
    per global, per address-taken local, per malloc site. With
    field-sensitivity on, each struct field gets its own derived
    object sharing the base's allocation site.
    """

    _ids = itertools.count()

    def __init__(
        self,
        name: str,
        ty: Type,
        kind: ObjectKind,
        alloc_fn: Optional[str] = None,
        is_array: bool = False,
        in_recursion: bool = False,
    ) -> None:
        super().__init__(name, ty)
        self.id = next(MemObject._ids)
        self.kind = kind
        self.alloc_fn = alloc_fn  # function containing the allocation site
        self.is_array = is_array
        self.in_recursion = in_recursion
        self.base: Optional[MemObject] = None  # set on field objects
        self.field_index: Optional[int] = None
        self._fields: Dict[int, MemObject] = {}
        # Set for function objects so indirect calls can resolve.
        self.function: Optional["Function"] = None

    def field(self, index: int, ty: Type) -> "MemObject":
        """The derived object for struct field *index* (memoised)."""
        if index in self._fields:
            return self._fields[index]
        sub = MemObject(
            f"{self.name}.f{index}",
            ty,
            self.kind,
            alloc_fn=self.alloc_fn,
            is_array=self.is_array,
            in_recursion=self.in_recursion,
        )
        sub.base = self
        sub.field_index = index
        self._fields[index] = sub
        return sub

    def fields(self) -> Dict[int, "MemObject"]:
        return self._fields

    def root(self) -> "MemObject":
        """The base allocation this object derives from (itself if not a field)."""
        return self.base.root() if self.base is not None else self

    @property
    def is_singleton(self) -> bool:
        """True if this abstract object denotes exactly one runtime
        location — the precondition for a strong update."""
        if self.kind in (ObjectKind.HEAP, ObjectKind.DUMMY):
            return False
        if self.is_array or self.in_recursion:
            return False
        return True

    def __repr__(self) -> str:
        return f"@{self.name}"


class Function(Value):
    """A function definition: parameters plus a list of basic blocks.

    A function used as a value (stored through a function pointer)
    participates in points-to sets via its ``mem_object``, a
    FUNCTION-kind :class:`MemObject` created lazily.
    """

    def __init__(self, name: str, ty: Type) -> None:
        super().__init__(name, ty)
        self.params: list = []  # List[Temp]
        self.blocks: list = []  # List[BasicBlock]
        self.is_declaration = False
        self._mem_object: Optional[MemObject] = None

    @property
    def entry(self):
        """The entry basic block (the first one)."""
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    @property
    def mem_object(self) -> MemObject:
        """The abstract object representing this function's address."""
        if self._mem_object is None:
            obj = MemObject(f"fn:{self.name}", self.type, ObjectKind.FUNCTION)
            obj.function = self
            self._mem_object = obj
        return self._mem_object

    def instructions(self):
        """All instructions, block by block."""
        for block in self.blocks:
            for instr in block.instructions:
                yield instr

    def __repr__(self) -> str:
        return f"@{self.name}"


def object_key(obj: MemObject) -> str:
    """A cross-process identity key for an abstract object.

    Raw ``MemObject.id`` values come from a process-global counter;
    incremental analysis needs to match objects of a previous run
    against objects of a fresh pipeline, so it keys them by kind plus
    allocation-site-derived name instead. The key is only usable when
    it is globally unique within a module — the incremental layer
    verifies that and falls back to a cold solve when it is not.
    """
    return f"{obj.kind.value}:{obj.name}"
