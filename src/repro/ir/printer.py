"""Textual printing of IR modules, for debugging and golden tests."""

from __future__ import annotations

from typing import List

from repro.ir.module import Module
from repro.ir.values import Function


def print_function(fn: Function) -> str:
    """Render one function as text."""
    params = ", ".join(f"{p!r}" for p in fn.params)
    lines: List[str] = [f"define {fn.name}({params}) {{"]
    for block in fn.blocks:
        lines.append(f"{block.label}:")
        for instr in block.instructions:
            lines.append(f"  {instr!r}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render the whole module as text."""
    lines: List[str] = [f"; module {module.name}"]
    for name, obj in module.globals.items():
        lines.append(f"global @{name} : {obj.type!r}")
    for fn in module.functions.values():
        if fn.is_declaration:
            lines.append(f"declare {fn.name}")
        else:
            lines.append(print_function(fn))
    return "\n".join(lines)
