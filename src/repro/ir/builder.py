"""A convenience builder for constructing IR programmatically.

Used by the frontend's lowering pass, by the workload generators, and
heavily by tests that need precise control of the IR under analysis.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.ir.instructions import (
    AddrOf, BinOp, Branch, Call, Copy, Fork, Gep, Join, Jump, Load, Lock,
    Phi, Ret, Store, Unlock,
)
from repro.ir.module import BasicBlock, Module
from repro.ir.types import FunctionType, Type, VOID
from repro.ir.values import Constant, Function, MemObject, ObjectKind, Temp, Value


class IRBuilder:
    """Builds instructions at an insertion point, LLVM-IRBuilder style."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.function: Optional[Function] = None
        self.block: Optional[BasicBlock] = None
        self._temp_counter = itertools.count()
        self._block_counter = itertools.count()

    # -- structure ----------------------------------------------------

    def new_function(self, name: str, ret: Type = VOID, param_types: Optional[List[Type]] = None,
                     param_names: Optional[List[str]] = None) -> Function:
        """Create a function with an entry block and position at it."""
        param_types = param_types or []
        fn = Function(name, FunctionType(ret, param_types))
        for i, pty in enumerate(param_types):
            pname = param_names[i] if param_names else f"{name}.arg{i}"
            fn.params.append(Temp(pname, pty))
        self.module.add_function(fn)
        entry = self.new_block("entry", fn)
        self.position(fn, entry)
        return fn

    def new_block(self, label: Optional[str] = None, fn: Optional[Function] = None) -> BasicBlock:
        fn = fn or self.function
        assert fn is not None, "no current function"
        suffix = next(self._block_counter)
        label = f"{label}{suffix}" if label else f"bb{suffix}"
        block = BasicBlock(f"{fn.name}.{label}", fn)
        fn.blocks.append(block)
        return block

    def position(self, fn: Function, block: BasicBlock) -> None:
        self.function = fn
        self.block = block

    def position_at(self, block: BasicBlock) -> None:
        self.function = block.function
        self.block = block

    def temp(self, ty: Type, hint: str = "t") -> Temp:
        return Temp(f"{hint}{next(self._temp_counter)}", ty)

    def _emit(self, instr, line: Optional[int] = None):
        assert self.block is not None, "builder has no insertion block"
        if line is not None:
            instr.line = line
        return self.block.append(instr)

    # -- objects ------------------------------------------------------

    def stack_object(self, name: str, ty: Type, is_array: bool = False,
                     in_recursion: bool = False) -> MemObject:
        fn_name = self.function.name if self.function else "?"
        obj = MemObject(name, ty, ObjectKind.STACK, alloc_fn=fn_name,
                        is_array=is_array, in_recursion=in_recursion)
        return self.module.register_object(obj)

    def heap_object(self, name: str, ty: Type) -> MemObject:
        fn_name = self.function.name if self.function else "?"
        obj = MemObject(name, ty, ObjectKind.HEAP, alloc_fn=fn_name)
        return self.module.register_object(obj)

    # -- instructions -------------------------------------------------

    def addr_of(self, obj: MemObject, dst: Optional[Temp] = None, hint: str = "p",
                line: Optional[int] = None) -> Temp:
        from repro.ir.types import PointerType
        dst = dst or self.temp(PointerType(obj.type), hint)
        self._emit(AddrOf(dst, obj), line)
        return dst

    def copy(self, src: Value, dst: Optional[Temp] = None, hint: str = "c",
             line: Optional[int] = None) -> Temp:
        dst = dst or self.temp(src.type, hint)
        self._emit(Copy(dst, src), line)
        return dst

    def load(self, ptr: Temp, dst: Optional[Temp] = None, hint: str = "l",
             line: Optional[int] = None) -> Temp:
        from repro.ir.types import PointerType, INT
        pointee = ptr.type.pointee if isinstance(ptr.type, PointerType) else INT
        dst = dst or self.temp(pointee, hint)
        self._emit(Load(dst, ptr), line)
        return dst

    def store(self, ptr: Temp, value: Value, line: Optional[int] = None) -> Store:
        return self._emit(Store(ptr, value), line)

    def gep(self, base: Temp, field_index: Optional[int], field_ty: Type,
            dst: Optional[Temp] = None, line: Optional[int] = None) -> Temp:
        from repro.ir.types import PointerType
        dst = dst or self.temp(PointerType(field_ty), "g")
        self._emit(Gep(dst, base, field_index), line)
        return dst

    def phi(self, dst: Temp, line: Optional[int] = None) -> Phi:
        return self._emit(Phi(dst), line)

    def call(self, callee: Value, args: Optional[List[Value]] = None,
             dst: Optional[Temp] = None, line: Optional[int] = None) -> Call:
        return self._emit(Call(dst, callee, args or []), line)

    def ret(self, value: Optional[Value] = None, line: Optional[int] = None) -> Ret:
        return self._emit(Ret(value), line)

    def fork(self, handle_ptr: Optional[Temp], routine: Value,
             arg: Optional[Value] = None, line: Optional[int] = None) -> Fork:
        return self._emit(Fork(handle_ptr, routine, arg), line)

    def join(self, handle: Temp, line: Optional[int] = None) -> Join:
        return self._emit(Join(handle), line)

    def lock(self, ptr: Temp, line: Optional[int] = None) -> Lock:
        return self._emit(Lock(ptr), line)

    def unlock(self, ptr: Temp, line: Optional[int] = None) -> Unlock:
        return self._emit(Unlock(ptr), line)

    def wait(self, cond_ptr: Temp, mutex_ptr: Temp, line: Optional[int] = None):
        from repro.ir.instructions import Wait
        return self._emit(Wait(cond_ptr, mutex_ptr), line)

    def signal(self, cond_ptr: Temp, broadcast: bool = False,
               line: Optional[int] = None):
        from repro.ir.instructions import Signal
        return self._emit(Signal(cond_ptr, broadcast=broadcast), line)

    def barrier_init(self, ptr: Temp, count: Value, line: Optional[int] = None):
        from repro.ir.instructions import BarrierInit
        return self._emit(BarrierInit(ptr, count), line)

    def barrier_wait(self, ptr: Temp, line: Optional[int] = None):
        from repro.ir.instructions import BarrierWait
        return self._emit(BarrierWait(ptr), line)

    def branch(self, cond: Value, then_block: BasicBlock, else_block: BasicBlock,
               line: Optional[int] = None) -> Branch:
        return self._emit(Branch(cond, then_block, else_block), line)

    def jump(self, target: BasicBlock, line: Optional[int] = None) -> Jump:
        return self._emit(Jump(target), line)

    def binop(self, op: str, lhs: Value, rhs: Value, dst: Optional[Temp] = None,
              line: Optional[int] = None) -> Temp:
        from repro.ir.types import INT
        dst = dst or self.temp(INT, "b")
        self._emit(BinOp(dst, op, lhs, rhs), line)
        return dst

    def const(self, value: int) -> Constant:
        from repro.ir.types import INT
        return Constant(value, INT)
