"""Module and basic-block containers."""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional

from repro.ir.instructions import Instruction
from repro.ir.types import Type
from repro.ir.values import Function, MemObject, ObjectKind


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    _ids = itertools.count()

    def __init__(self, label: str, function: Optional[Function] = None) -> None:
        self.id = next(BasicBlock._ids)
        self.label = label
        self.function = function
        self.instructions: List[Instruction] = []

    def append(self, instr: Instruction) -> Instruction:
        """Append *instr* and set its parent pointer."""
        instr.block = self
        self.instructions.append(instr)
        return instr

    def insert(self, index: int, instr: Instruction) -> Instruction:
        instr.block = self
        self.instructions.insert(index, instr)
        return instr

    @property
    def terminator(self) -> Optional[Instruction]:
        """The trailing terminator, or None while under construction."""
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:
        return f"<block {self.label}>"


class Module:
    """A whole program: globals, functions, and the abstract-object table."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, MemObject] = {}
        self.structs: Dict[str, Type] = {}
        # Every MemObject ever created for this module, for iteration.
        self.objects: List[MemObject] = []

    # -- functions ----------------------------------------------------

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ValueError(f"duplicate function {fn.name}")
        self.functions[fn.name] = fn
        return fn

    def function(self, name: str) -> Function:
        return self.functions[name]

    @property
    def main(self) -> Function:
        """The program entry point."""
        return self.functions["main"]

    # -- objects ------------------------------------------------------

    def add_global(self, name: str, ty: Type, is_array: bool = False) -> MemObject:
        """Declare a global variable's abstract object."""
        if name in self.globals:
            raise ValueError(f"duplicate global {name}")
        obj = MemObject(name, ty, ObjectKind.GLOBAL, is_array=is_array)
        self.globals[name] = obj
        self.objects.append(obj)
        return obj

    def register_object(self, obj: MemObject) -> MemObject:
        """Record a stack/heap object created during lowering."""
        self.objects.append(obj)
        return obj

    def all_instructions(self) -> Iterator[Instruction]:
        for fn in self.functions.values():
            yield from fn.instructions()

    def __repr__(self) -> str:
        return f"<module {self.name}: {len(self.functions)} functions>"


def canonical_temps(module: Module) -> List["Temp"]:
    """Every temp of *module* in deterministic first-sight order.

    Raw ``Temp.id`` values come from a process-global counter, so they
    are offset by whatever was compiled earlier in the process and
    cannot key serialized artifacts. This walk — functions in
    definition order, params first, then every instruction's defined
    temp and operands in program order — depends only on the module's
    structure, which is itself a deterministic function of the source
    text.
    """
    from repro.ir.values import Temp

    seen: Dict[int, int] = {}
    order: List[Temp] = []

    def see(value: object) -> None:
        if isinstance(value, Temp) and value.id not in seen:
            seen[value.id] = len(order)
            order.append(value)

    for fn in module.functions.values():
        for param in fn.params:
            see(param)
        for block in fn.blocks:
            for instr in block.instructions:
                defined = instr.defined_temp()
                if defined is not None:
                    see(defined)
                for operand in instr.operands():
                    see(operand)
    return order


def canonical_temp_index(module: Module) -> Dict[int, int]:
    """``Temp.id -> canonical index`` (see :func:`canonical_temps`)."""
    return {temp.id: i for i, temp in enumerate(canonical_temps(module))}


def function_temps(fn: Function) -> List["Temp"]:
    """One function's temps in deterministic first-sight order — the
    restriction of :func:`canonical_temps` to a single function.
    Temps never cross function boundaries in this IR, so this is the
    contiguous slice the whole-module walk assigns to *fn*, renumbered
    from zero. Incremental per-function artifacts use these indices as
    their doc-local temp keys."""
    from repro.ir.values import Temp

    seen: Dict[int, int] = {}
    order: List[Temp] = []

    def see(value: object) -> None:
        if isinstance(value, Temp) and value.id not in seen:
            seen[value.id] = len(order)
            order.append(value)

    for param in fn.params:
        see(param)
    for block in fn.blocks:
        for instr in block.instructions:
            defined = instr.defined_temp()
            if defined is not None:
                see(defined)
            for operand in instr.operands():
                see(operand)
    return order


def canonical_instr_index(module: Module) -> Dict[int, int]:
    """``Instruction.id -> canonical index`` in program order (same
    rationale as :func:`canonical_temp_index`: raw instruction ids are
    process-global)."""
    return {instr.id: i for i, instr in enumerate(module.all_instructions())}
