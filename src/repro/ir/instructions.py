"""IR instructions.

The pointer-relevant core matches the paper's five statement forms
(ADDROF, COPY, LOAD, STORE, PHI) plus GEP for field addresses, CALL /
RET for interprocedural flow, FORK / JOIN / LOCK / UNLOCK for the
Pthreads API, branch terminators, and opaque scalar arithmetic.

Every instruction carries a stable integer ``id`` so analyses can use
instructions as graph nodes, and a back-pointer to its basic block.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.ir.values import Constant, Function, MemObject, Temp, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.module import BasicBlock


class Instruction:
    """Base class of all instructions."""

    _ids = itertools.count()

    def __init__(self) -> None:
        self.id = next(Instruction._ids)
        self.block: Optional["BasicBlock"] = None
        # Source line for diagnostics (set by the frontend when known).
        self.line: Optional[int] = None

    @property
    def function(self):
        """The enclosing function (via the parent block)."""
        return self.block.function if self.block is not None else None

    def is_terminator(self) -> bool:
        return isinstance(self, (Branch, Jump, Ret))

    def operands(self) -> List[Value]:
        """Values read by this instruction (for generic traversals)."""
        return []

    def defined_temp(self) -> Optional[Temp]:
        """The Temp this instruction defines, if any."""
        return getattr(self, "dst", None)

    def _fmt(self, text: str) -> str:
        return text

    def __repr__(self) -> str:
        return f"<{type(self).__name__} #{self.id}>"


class AddrOf(Instruction):
    """``p = &o`` — also models allocation sites (malloc, globals)."""

    def __init__(self, dst: Temp, obj: MemObject) -> None:
        super().__init__()
        self.dst = dst
        self.obj = obj

    def operands(self) -> List[Value]:
        return [self.obj]

    def __repr__(self) -> str:
        return f"{self.dst!r} = &{self.obj.name}"


class Copy(Instruction):
    """``p = q`` (q may be a constant, e.g. null)."""

    def __init__(self, dst: Temp, src: Value) -> None:
        super().__init__()
        self.dst = dst
        self.src = src

    def operands(self) -> List[Value]:
        return [self.src]

    def __repr__(self) -> str:
        return f"{self.dst!r} = {self.src!r}"


class Phi(Instruction):
    """``p = phi [(v1, b1), (v2, b2), ...]`` for top-level variables."""

    def __init__(self, dst: Temp, incomings: Optional[List[Tuple[Value, "BasicBlock"]]] = None) -> None:
        super().__init__()
        self.dst = dst
        self.incomings: List[Tuple[Value, "BasicBlock"]] = incomings or []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self.incomings.append((value, block))

    def operands(self) -> List[Value]:
        return [v for v, _ in self.incomings]

    def __repr__(self) -> str:
        parts = ", ".join(f"[{v!r}, {b.label}]" for v, b in self.incomings)
        return f"{self.dst!r} = phi {parts}"


class Load(Instruction):
    """``p = *q``."""

    def __init__(self, dst: Temp, ptr: Temp) -> None:
        super().__init__()
        self.dst = dst
        self.ptr = ptr

    def operands(self) -> List[Value]:
        return [self.ptr]

    def __repr__(self) -> str:
        return f"{self.dst!r} = *{self.ptr!r}"


class Store(Instruction):
    """``*p = q``."""

    def __init__(self, ptr: Temp, value: Value) -> None:
        super().__init__()
        self.ptr = ptr
        self.value = value

    def operands(self) -> List[Value]:
        return [self.ptr, self.value]

    def __repr__(self) -> str:
        return f"*{self.ptr!r} = {self.value!r}"


class Gep(Instruction):
    """``p = &q->f`` — field address (field-sensitive pointer step).

    ``field_index`` of ``None`` encodes an array element address,
    which is analysed monolithically (same object as the base).
    """

    def __init__(self, dst: Temp, base: Temp, field_index: Optional[int]) -> None:
        super().__init__()
        self.dst = dst
        self.base = base
        self.field_index = field_index

    def operands(self) -> List[Value]:
        return [self.base]

    def __repr__(self) -> str:
        if self.field_index is None:
            return f"{self.dst!r} = gep {self.base!r}[*]"
        return f"{self.dst!r} = gep {self.base!r}.f{self.field_index}"


class Call(Instruction):
    """``p = call callee(args)``; callee may be a Function or a Temp
    (function pointer, resolved by the pre-analysis)."""

    def __init__(self, dst: Optional[Temp], callee: Value, args: List[Value]) -> None:
        super().__init__()
        self.dst = dst
        self.callee = callee
        self.args = args

    @property
    def is_indirect(self) -> bool:
        return not isinstance(self.callee, Function)

    def operands(self) -> List[Value]:
        return [self.callee] + list(self.args)

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        prefix = f"{self.dst!r} = " if self.dst is not None else ""
        return f"{prefix}call {self.callee!r}({args})"


class Ret(Instruction):
    """``ret v`` (terminator)."""

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__()
        self.value = value

    def operands(self) -> List[Value]:
        return [self.value] if self.value is not None else []

    def __repr__(self) -> str:
        return f"ret {self.value!r}" if self.value is not None else "ret"


class Fork(Instruction):
    """``fork(handle_ptr, routine, arg)`` — pthread_create.

    ``handle_ptr`` points at the pthread_t slot written by the create;
    ``routine`` is a Function or a function-pointer Temp; ``arg`` is
    the single void* argument passed to the start routine.
    """

    def __init__(self, handle_ptr: Optional[Temp], routine: Value, arg: Optional[Value]) -> None:
        super().__init__()
        self.handle_ptr = handle_ptr
        self.routine = routine
        self.arg = arg

    def operands(self) -> List[Value]:
        ops: List[Value] = [self.routine]
        if self.handle_ptr is not None:
            ops.append(self.handle_ptr)
        if self.arg is not None:
            ops.append(self.arg)
        return ops

    def __repr__(self) -> str:
        return f"fork(&{self.handle_ptr!r}, {self.routine!r}, {self.arg!r})"


class Join(Instruction):
    """``join(handle)`` — pthread_join on the thread id in *handle*."""

    def __init__(self, handle: Temp) -> None:
        super().__init__()
        self.handle = handle

    def operands(self) -> List[Value]:
        return [self.handle]

    def __repr__(self) -> str:
        return f"join({self.handle!r})"


class Lock(Instruction):
    """``lock(l)`` — pthread_mutex_lock through pointer *ptr*."""

    def __init__(self, ptr: Temp) -> None:
        super().__init__()
        self.ptr = ptr

    def operands(self) -> List[Value]:
        return [self.ptr]

    def __repr__(self) -> str:
        return f"lock({self.ptr!r})"


class Unlock(Instruction):
    """``unlock(l)`` — pthread_mutex_unlock through pointer *ptr*."""

    def __init__(self, ptr: Temp) -> None:
        super().__init__()
        self.ptr = ptr

    def operands(self) -> List[Value]:
        return [self.ptr]

    def __repr__(self) -> str:
        return f"unlock({self.ptr!r})"


class Wait(Instruction):
    """``wait(cv, mu)`` — pthread_cond_wait.

    Semantically releases *mutex_ptr*, sleeps, and re-acquires it.
    The analyses treat the sleep soundly as a no-op (POSIX allows
    spurious wakeups, so "may return at any time" is a valid model),
    but the release/re-acquire matters: a lock-release span ends at a
    wait on its own mutex and a fresh span begins after it.
    """

    def __init__(self, cond_ptr: Temp, mutex_ptr: Temp) -> None:
        super().__init__()
        self.cond_ptr = cond_ptr
        self.mutex_ptr = mutex_ptr

    def operands(self) -> List[Value]:
        return [self.cond_ptr, self.mutex_ptr]

    def __repr__(self) -> str:
        return f"wait({self.cond_ptr!r}, {self.mutex_ptr!r})"


class Signal(Instruction):
    """``signal(cv)`` / ``broadcast(cv)`` — pthread_cond_signal and
    pthread_cond_broadcast. A sound no-op for the analyses."""

    def __init__(self, cond_ptr: Temp, broadcast: bool = False) -> None:
        super().__init__()
        self.cond_ptr = cond_ptr
        self.broadcast = broadcast

    def operands(self) -> List[Value]:
        return [self.cond_ptr]

    def __repr__(self) -> str:
        name = "broadcast" if self.broadcast else "signal"
        return f"{name}({self.cond_ptr!r})"


class BarrierInit(Instruction):
    """``barrier_init(b, n)`` — pthread_barrier_init with count *n*."""

    def __init__(self, ptr: Temp, count: Value) -> None:
        super().__init__()
        self.ptr = ptr
        self.count = count

    def operands(self) -> List[Value]:
        return [self.ptr, self.count]

    def __repr__(self) -> str:
        return f"barrier_init({self.ptr!r}, {self.count!r})"


class BarrierWait(Instruction):
    """``barrier_wait(b)`` — pthread_barrier_wait. A sound no-op for
    the analyses; the interpreter performs the real rendezvous."""

    def __init__(self, ptr: Temp) -> None:
        super().__init__()
        self.ptr = ptr

    def operands(self) -> List[Value]:
        return [self.ptr]

    def __repr__(self) -> str:
        return f"barrier_wait({self.ptr!r})"


class Branch(Instruction):
    """Conditional branch (terminator). The condition is opaque to the
    pointer analysis (paths are merged, per flow-sensitivity)."""

    def __init__(self, cond: Value, then_block: "BasicBlock", else_block: "BasicBlock") -> None:
        super().__init__()
        self.cond = cond
        self.then_block = then_block
        self.else_block = else_block

    def operands(self) -> List[Value]:
        return [self.cond]

    def __repr__(self) -> str:
        return f"br {self.cond!r}, {self.then_block.label}, {self.else_block.label}"


class Jump(Instruction):
    """Unconditional branch (terminator)."""

    def __init__(self, target: "BasicBlock") -> None:
        super().__init__()
        self.target = target

    def __repr__(self) -> str:
        return f"jmp {self.target.label}"


class BinOp(Instruction):
    """Scalar arithmetic / comparison; opaque to pointer analysis."""

    def __init__(self, dst: Temp, op: str, lhs: Value, rhs: Value) -> None:
        super().__init__()
        self.dst = dst
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def operands(self) -> List[Value]:
        return [self.lhs, self.rhs]

    def __repr__(self) -> str:
        return f"{self.dst!r} = {self.lhs!r} {self.op} {self.rhs!r}"
