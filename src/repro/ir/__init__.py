"""The partial-SSA intermediate representation.

This mirrors the representation the paper analyses (Section 2.1): all
program variables are split into *top-level* variables ``T`` (SSA
temporaries, never address-taken) and *address-taken* objects ``A``
(stack slots, globals, heap allocations), accessed only through LOAD
and STORE. Pointer-relevant statements are ADDROF / COPY / LOAD /
STORE / PHI, plus GEP for field-sensitivity and the Pthreads
synchronisation statements FORK / JOIN / LOCK / UNLOCK.
"""

from repro.ir.types import (
    ArrayType,
    BarrierType,
    CondType,
    FunctionType,
    IntType,
    LockType,
    PointerType,
    StructType,
    ThreadType,
    Type,
    VoidType,
    INT,
    VOID,
)
from repro.ir.values import Constant, Function, MemObject, ObjectKind, Temp, Value
from repro.ir.instructions import (
    AddrOf,
    BarrierInit,
    BarrierWait,
    BinOp,
    Branch,
    Call,
    Copy,
    Fork,
    Gep,
    Instruction,
    Join,
    Jump,
    Load,
    Lock,
    Phi,
    Ret,
    Signal,
    Store,
    Unlock,
    Wait,
)
from repro.ir.module import BasicBlock, Module
from repro.ir.builder import IRBuilder
from repro.ir.printer import print_function, print_module
from repro.ir.verify import VerificationError, verify_module

__all__ = [
    "Type", "IntType", "VoidType", "PointerType", "StructType", "ArrayType",
    "FunctionType", "ThreadType", "LockType", "CondType", "BarrierType",
    "INT", "VOID",
    "Value", "Temp", "Constant", "Function", "MemObject", "ObjectKind",
    "Instruction", "AddrOf", "Copy", "Phi", "Load", "Store", "Gep", "Call",
    "Ret", "Fork", "Join", "Lock", "Unlock", "Wait", "Signal",
    "BarrierInit", "BarrierWait", "Branch", "Jump", "BinOp",
    "Module", "BasicBlock", "IRBuilder",
    "print_module", "print_function",
    "verify_module", "VerificationError",
]
