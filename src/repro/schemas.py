"""Schema-version constants shared by every emitter and validator.

Each machine-readable document the pipeline produces carries a
``schema`` tag so downstream consumers can reject documents they do
not understand. The literals used to be duplicated across the
emitting modules; this module is the single source of truth:

- ``repro.obs/1``      — observability profiles (:mod:`repro.obs`)
- ``repro.trace/1``    — event traces (:mod:`repro.trace`)
- ``repro.bench/1``    — benchmark snapshots (``benchmarks/run_bench.py``)
- ``repro.artifact/1`` — cached analysis artifacts
  (:mod:`repro.service.artifacts`)
- ``repro.funcartifact/1`` — per-function artifact sub-documents for
  incremental analysis (:mod:`repro.service.incremental`)
- ``repro.queryartifact/1`` — cached demand-query sub-results
  (:mod:`repro.service.runner`)
- ``repro.batch/1``    — batch reports (:mod:`repro.service.batch`)
- ``repro.metrics/1``  — service telemetry snapshots: counters,
  gauges, mergeable latency histograms, and flattened phase times
  (:mod:`repro.obs`)
- ``repro.gwframe/1``  — gateway streaming response frames: the
  progressive-result wire format spoken by the analysis gateway over
  HTTP chunks and framed JSONL (:mod:`repro.gateway.protocol`)

``CODE_VERSION`` participates in the content-addressed cache key
(see :mod:`repro.service.cache`): bump it whenever an analysis change
makes previously cached artifacts stale — cached results from an
older code version then miss instead of being served.

This module is a pure leaf (it imports nothing at all), so the other
leaf modules (:mod:`repro.obs`, :mod:`repro.trace`) may depend on it
without creating cycles.
"""

from __future__ import annotations

PROFILE_SCHEMA = "repro.obs/1"
TRACE_SCHEMA = "repro.trace/1"
BENCH_SCHEMA = "repro.bench/1"
ARTIFACT_SCHEMA = "repro.artifact/1"
FUNC_ARTIFACT_SCHEMA = "repro.funcartifact/1"
QUERY_ARTIFACT_SCHEMA = "repro.queryartifact/1"
BATCH_SCHEMA = "repro.batch/1"
METRICS_SCHEMA = "repro.metrics/1"
GWFRAME_SCHEMA = "repro.gwframe/1"

#: Version of the analysis semantics + artifact format. Part of the
#: artifact cache key: bumping it invalidates every cached artifact.
CODE_VERSION = "fsam-1.0.0/artifact-1"
